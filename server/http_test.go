package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cgraph"
	"cgraph/algo"
	"cgraph/api"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/refimpl"
	"cgraph/internal/testutil"
	"cgraph/model"
	"cgraph/server"
)

func httpJSON(t *testing.T, client *http.Client, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("%s %s: bad JSON: %v", method, url, err)
	}
	return resp.StatusCode, out
}

// errCode digs the machine-readable code out of an api.ErrorBody envelope.
func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("response has no error envelope: %v", body)
	}
	code, _ := e["code"].(string)
	return code
}

func pollState(t *testing.T, client *http.Client, base, id string, want server.State) map[string]any {
	t.Helper()
	var last map[string]any
	testutil.WaitFor(t, 60*time.Second, func() bool {
		code, st := httpJSON(t, client, "GET", base+"/v1/jobs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s = %d (%v)", id, code, st)
		}
		last = st
		if s, _ := st["state"].(string); s != string(want) && server.State(s).Terminal() {
			t.Fatalf("job %s reached %s, want %s", id, s, want)
		}
		return st["state"] == string(want)
	}, "job %s never reached %s", id, want)
	return last
}

// TestHTTPControlPlaneDemo is the acceptance demo: start Serve, submit
// PageRank, submit SSSP mid-flight, cancel one job, expire another via its
// context deadline, ingest a snapshot, and retrieve results for the
// surviving jobs — all without restarting the engine, with every lifecycle
// transition observable over the versioned /v1 API.
func TestHTTPControlPlaneDemo(t *testing.T) {
	edges := gen.RMAT(42, 400, 8000, 0.57, 0.19, 0.19)
	sys := cgraph.NewSystem(cgraph.WithWorkers(2), cgraph.WithCoreSubgraph(false))
	if err := sys.LoadEdges(400, edges); err != nil {
		t.Fatal(err)
	}
	svc := server.New(sys, server.Config{})
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := contextWithTimeout(t)
		defer cancel()
		svc.Stop(ctx)
	}()

	// Expose the bundled algorithms plus a never-converging one so the
	// cancellation legs are deterministic.
	reg := server.DefaultRegistry()
	reg["spin"] = func(server.ProgramParams) model.Program { return spinProgram{} }
	ts := httptest.NewServer(svc.Handler(reg))
	defer ts.Close()
	c := ts.Client()

	// Submit PageRank with labels; the resident loop starts iterating it.
	code, pr := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{
		"algo": "pagerank", "labels": map[string]string{"tenant": "demo"},
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs pagerank = %d (%v)", code, pr)
	}
	prID := pr["id"].(string)
	if lbl, _ := pr["labels"].(map[string]any); lbl["tenant"] != "demo" {
		t.Fatalf("labels not echoed: %v", pr)
	}

	// Submit SSSP mid-flight.
	code, ss := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "sssp", "source": 1})
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs sssp = %d (%v)", code, ss)
	}
	ssID := ss["id"].(string)

	// A spin job, cancelled over the control plane.
	_, spin := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "spin"})
	spinID := spin["id"].(string)
	pollState(t, c, ts.URL, spinID, server.StateRunning)
	if code, st := httpJSON(t, c, "DELETE", ts.URL+"/v1/jobs/"+spinID, nil); code != http.StatusOK {
		t.Fatalf("DELETE /v1/jobs/%s = %d (%v)", spinID, code, st)
	}
	cancelled := pollState(t, c, ts.URL, spinID, server.StateCancelled)
	if e, _ := cancelled["error"].(map[string]any); e["code"] != string(api.CodeCancelled) {
		t.Fatalf("cancelled job error = %v, want code %q", cancelled["error"], api.CodeCancelled)
	}

	// Another spin job, retired by its context deadline.
	_, dl := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "spin", "timeout_ms": 40})
	dlID := dl["id"].(string)
	dlSt := pollState(t, c, ts.URL, dlID, server.StateFailed)
	if e, _ := dlSt["error"].(map[string]any); e["code"] != string(api.CodeDeadlineExceeded) {
		t.Fatalf("deadline job error = %v, want code %q", dlSt["error"], api.CodeDeadlineExceeded)
	}

	// Ingest a snapshot while serving, and bind a new job to it.
	mut, _ := gen.Mutate(edges, 0.05, 400, 7)
	snapEdges := make([][3]float64, len(mut))
	for i, e := range mut {
		snapEdges[i] = [3]float64{float64(e.Src), float64(e.Dst), float64(e.Weight)}
	}
	code, snap := httpJSON(t, c, "POST", ts.URL+"/v1/snapshots", map[string]any{"timestamp": 20, "edges": snapEdges})
	if code != http.StatusOK {
		t.Fatalf("POST /v1/snapshots = %d (%v)", code, snap)
	}
	code, ss2 := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "sssp", "source": 1, "at_timestamp": 20})
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs post-snapshot sssp = %d (%v)", code, ss2)
	}
	ss2ID := ss2["id"].(string)

	// The surviving jobs converge; pull and verify their results.
	pollState(t, c, ts.URL, prID, server.StateDone)
	pollState(t, c, ts.URL, ssID, server.StateDone)
	pollState(t, c, ts.URL, ss2ID, server.StateDone)

	g := graph.Build(400, edges)
	verify := func(id string, want []float64, tol float64) {
		t.Helper()
		code, res := httpJSON(t, c, "GET", ts.URL+"/v1/jobs/"+id+"/results", nil)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s/results = %d (%v)", id, code, res)
		}
		values := res["values"].([]any)
		if len(values) != len(want) {
			t.Fatalf("job %s: %d values, want %d", id, len(values), len(want))
		}
		for v, raw := range values {
			if math.IsInf(want[v], 1) {
				if s, ok := raw.(string); !ok || s != "+Inf" {
					t.Fatalf("job %s vertex %d: got %v want +Inf", id, v, raw)
				}
				continue
			}
			got, ok := raw.(float64)
			if !ok || math.Abs(got-want[v]) > tol*math.Max(1, math.Abs(want[v])) {
				t.Fatalf("job %s vertex %d: got %v want %v", id, v, raw, want[v])
			}
		}
	}
	// The registry's PageRank runs at its default epsilon (1e-3), so
	// compare with a matching relative tolerance; tight-epsilon numeric
	// fidelity is covered by the core engine tests.
	verify(prID, refimpl.PageRank(g, 0.85, 1e-12, 3000), 1e-2)

	// Top-k results for the pre-snapshot SSSP.
	code, topRes := httpJSON(t, c, "GET", ts.URL+"/v1/jobs/"+ssID+"/results?top=5", nil)
	if code != http.StatusOK || len(topRes["top"].([]any)) != 5 {
		t.Fatalf("GET results top=5 failed: %d %v", code, topRes)
	}

	// The cancelled job has no results.
	if code, body := httpJSON(t, c, "GET", ts.URL+"/v1/jobs/"+spinID+"/results", nil); code != http.StatusConflict || errCode(t, body) != string(api.CodeConflict) {
		t.Fatalf("GET results of cancelled job = %d (%v), want 409 conflict", code, body)
	}

	// Job list shows every lifecycle outcome side by side, plus the
	// scheduler's last plan and a total for pagination.
	_, list := httpJSON(t, c, "GET", ts.URL+"/v1/jobs", nil)
	states := map[string]int{}
	for _, item := range list["jobs"].([]any) {
		states[item.(map[string]any)["state"].(string)]++
	}
	if states["done"] != 3 || states["cancelled"] != 1 || states["failed"] != 1 {
		t.Fatalf("lifecycle mix wrong: %v", states)
	}
	if _, ok := list["sched"].(map[string]any); !ok {
		t.Fatalf("/v1/jobs response missing sched summary: %v", list)
	}
	if total, _ := list["total"].(float64); int(total) != 5 {
		t.Fatalf("list total = %v, want 5", list["total"])
	}

	// The scheduler's decision is directly observable: policy, fitted θ,
	// and the group/load order of the last round.
	code, schedInfo := httpJSON(t, c, "GET", ts.URL+"/v1/sched", nil)
	if code != http.StatusOK || schedInfo["policy"] != "priority" {
		t.Fatalf("GET /v1/sched = %d (%v)", code, schedInfo)
	}
	if th, _ := schedInfo["theta"].(float64); th <= 0 {
		t.Fatalf("sched theta not fitted: %v", schedInfo)
	}
	if groups, ok := schedInfo["groups"].([]any); !ok || len(groups) == 0 {
		t.Fatalf("sched groups not reported: %v", schedInfo)
	}

	// Structured metrics mirror the Prometheus exposition.
	code, jm := httpJSON(t, c, "GET", ts.URL+"/v1/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", code)
	}
	if jobs, _ := jm["jobs"].(map[string]any); jobs["done"].(float64) != 3 {
		t.Fatalf("metrics job counts wrong: %v", jm)
	}

	// Metrics expose the same picture in Prometheus text format.
	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`cgraph_jobs{state="done"} 3`,
		`cgraph_jobs{state="cancelled"} 1`,
		`cgraph_jobs{state="failed"} 1`,
		"cgraph_engine_rounds_total",
		`cgraph_sched_theta{policy="priority"}`,
		"cgraph_sched_theta_refits_total",
		"cgraph_sched_groups",
		fmt.Sprintf(`cgraph_job_iterations{algo="PageRank",id="%s"}`, prID),
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestHTTPErrorPaths pins the machine-readable error contract: malformed
// bodies, unknown fields, unknown algorithms, wrong methods, double
// cancels, and results in every unavailable flavour.
func TestHTTPErrorPaths(t *testing.T) {
	svc := startService(t, server.Config{}, testEdges(), 300)
	reg := server.DefaultRegistry()
	reg["spin"] = func(server.ProgramParams) model.Program { return spinProgram{} }
	ts := httptest.NewServer(svc.Handler(reg))
	defer ts.Close()
	c := ts.Client()

	// Malformed JSON body.
	resp, err := c.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	var eb map[string]any
	json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || errCode(t, eb) != string(api.CodeBadRequest) {
		t.Fatalf("malformed JSON = %d (%v), want 400 bad_request", resp.StatusCode, eb)
	}

	// Unknown fields are rejected, not silently dropped.
	if code, body := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "pagerank", "sourcee": 3}); code != http.StatusBadRequest || errCode(t, body) != string(api.CodeBadRequest) {
		t.Fatalf("unknown field = %d (%v), want 400 bad_request", code, body)
	}

	// Unknown algorithm name has its own code.
	if code, body := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "nope"}); code != http.StatusBadRequest || errCode(t, body) != string(api.CodeUnknownAlgorithm) {
		t.Fatalf("unknown algo = %d (%v), want 400 unknown_algorithm", code, body)
	}

	// Unknown jobs.
	if code, body := httpJSON(t, c, "GET", ts.URL+"/v1/jobs/job-404", nil); code != http.StatusNotFound || errCode(t, body) != string(api.CodeNotFound) {
		t.Fatalf("unknown job = %d (%v), want 404 not_found", code, body)
	}
	if code, _ := httpJSON(t, c, "DELETE", ts.URL+"/v1/jobs/job-404", nil); code != http.StatusNotFound {
		t.Fatalf("cancel unknown job = %d, want 404", code)
	}
	if code, body := httpJSON(t, c, "GET", ts.URL+"/v1/jobs/job-404/events", nil); code != http.StatusNotFound || errCode(t, body) != string(api.CodeNotFound) {
		t.Fatalf("events of unknown job = %d (%v), want 404", code, body)
	}

	// Unknown routes are JSON errors too.
	if code, body := httpJSON(t, c, "GET", ts.URL+"/v1/nope", nil); code != http.StatusNotFound || errCode(t, body) != string(api.CodeNotFound) {
		t.Fatalf("unknown route = %d (%v), want 404 not_found", code, body)
	}

	// Wrong method on a known route: 405 with Allow and an api.Error body.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/jobs", nil)
	resp, err = c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	eb = nil
	json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || errCode(t, eb) != string(api.CodeMethodNotAllowed) {
		t.Fatalf("PUT /v1/jobs = %d (%v), want 405 method_not_allowed", resp.StatusCode, eb)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, POST" {
		t.Fatalf("Allow = %q, want \"GET, POST\"", allow)
	}

	// HEAD rides GET (health probes, curl -I) instead of 405ing.
	headReq, _ := http.NewRequest(http.MethodHead, ts.URL+"/metrics", nil)
	resp, err = c.Do(headReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD /metrics = %d, want 200", resp.StatusCode)
	}

	// Bad snapshot: a short edge list violates the slot-rewrite contract.
	if code, body := httpJSON(t, c, "POST", ts.URL+"/v1/snapshots", map[string]any{"timestamp": 5, "edges": [][3]float64{{0, 1, 1}}}); code != http.StatusBadRequest || errCode(t, body) != string(api.CodeBadRequest) {
		t.Fatalf("short snapshot = %d (%v), want 400", code, body)
	}

	// Results of a live-but-unfinished job: 409 with the not_ready code
	// (distinct from terminal-state conflicts), then a double cancel:
	// first OK, second 409 conflict.
	_, spin := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "spin"})
	spinID := spin["id"].(string)
	pollState(t, c, ts.URL, spinID, server.StateRunning)
	if code, body := httpJSON(t, c, "GET", ts.URL+"/v1/jobs/"+spinID+"/results", nil); code != http.StatusConflict || errCode(t, body) != string(api.CodeNotReady) {
		t.Fatalf("results of running job = %d (%v), want 409 not_ready", code, body)
	}
	if code, _ := httpJSON(t, c, "DELETE", ts.URL+"/v1/jobs/"+spinID, nil); code != http.StatusOK {
		t.Fatalf("first cancel = %d, want 200", code)
	}
	pollState(t, c, ts.URL, spinID, server.StateCancelled)
	if code, body := httpJSON(t, c, "DELETE", ts.URL+"/v1/jobs/"+spinID, nil); code != http.StatusConflict || errCode(t, body) != string(api.CodeConflict) {
		t.Fatalf("double cancel = %d (%v), want 409 conflict", code, body)
	}
}

// TestHTTPLegacyRoutesRedirect pins the compat contract: the
// pre-versioning routes answer 308 to their /v1 successors, and a client
// that follows redirects (the default) keeps working end to end.
func TestHTTPLegacyRoutesRedirect(t *testing.T) {
	svc := startService(t, server.Config{}, testEdges(), 300)
	ts := httptest.NewServer(svc.Handler(nil))
	defer ts.Close()

	// Raw redirect: method and target preserved.
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	for _, tc := range []struct{ method, path, want string }{
		{"POST", "/jobs", "/v1/jobs"},
		{"GET", "/jobs", "/v1/jobs"},
		{"GET", "/jobs/job-0", "/v1/jobs/job-0"},
		{"DELETE", "/jobs/job-0", "/v1/jobs/job-0"},
		{"GET", "/results/job-0?top=3", "/v1/jobs/job-0/results?top=3"},
		{"POST", "/snapshots", "/v1/snapshots"},
		{"GET", "/sched", "/v1/sched"},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := noFollow.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Fatalf("%s %s = %d, want 308", tc.method, tc.path, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != tc.want {
			t.Fatalf("%s %s redirects to %q, want %q", tc.method, tc.path, loc, tc.want)
		}
	}

	// A legacy client that follows redirects completes a full submit →
	// poll → results cycle: 308 replays the POST body.
	c := ts.Client()
	code, st := httpJSON(t, c, "POST", ts.URL+"/jobs", map[string]any{"algo": "bfs", "source": 0})
	if code != http.StatusAccepted {
		t.Fatalf("legacy POST /jobs = %d (%v)", code, st)
	}
	id := st["id"].(string)
	pollState(t, c, ts.URL, id, server.StateDone)
	code, res := httpJSON(t, c, "GET", ts.URL+"/results/"+id, nil)
	if code != http.StatusOK || res["num_vertices"].(float64) != 300 {
		t.Fatalf("legacy GET /results = %d (%v)", code, res)
	}
}

// TestHTTPHistoryCompaction exercises the terminal-job ring: beyond
// RetainTerminal the oldest terminal jobs lose their results but stay
// listable (and paginable) as history, with results answering 410
// released.
func TestHTTPHistoryCompaction(t *testing.T) {
	svc := startService(t, server.Config{RetainTerminal: 1, HistoryLimit: 2}, testEdges(), 300)
	ts := httptest.NewServer(svc.Handler(nil))
	defer ts.Close()
	c := ts.Client()

	var ids []string
	for i := 0; i < 4; i++ {
		code, st := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "bfs", "source": i})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		id := st["id"].(string)
		ids = append(ids, id)
		pollState(t, c, ts.URL, id, server.StateDone)
	}

	// The oldest job fell off the history ring entirely (HistoryLimit 2,
	// three jobs compacted): 404. The next two are history: listable,
	// marked released, results 410.
	if code, _ := httpJSON(t, c, "GET", ts.URL+"/v1/jobs/"+ids[0], nil); code != http.StatusNotFound {
		t.Fatalf("evicted job = %d, want 404", code)
	}
	for _, id := range ids[1:3] {
		code, st := httpJSON(t, c, "GET", ts.URL+"/v1/jobs/"+id, nil)
		if code != http.StatusOK || st["released"] != true || st["state"] != "done" {
			t.Fatalf("history job %s = %d (%v), want released done", id, code, st)
		}
		code, body := httpJSON(t, c, "GET", ts.URL+"/v1/jobs/"+id+"/results", nil)
		if code != http.StatusGone || errCode(t, body) != string(api.CodeReleased) {
			t.Fatalf("history results %s = %d (%v), want 410 released", id, code, body)
		}
	}
	// The newest job keeps full state and results.
	code, res := httpJSON(t, c, "GET", ts.URL+"/v1/jobs/"+ids[3]+"/results", nil)
	if code != http.StatusOK || res["num_vertices"].(float64) != 300 {
		t.Fatalf("retained job results = %d (%v)", code, res)
	}

	// Listing paginates over history + live: total 3, pages of 2.
	_, page1 := httpJSON(t, c, "GET", ts.URL+"/v1/jobs?limit=2", nil)
	_, page2 := httpJSON(t, c, "GET", ts.URL+"/v1/jobs?limit=2&offset=2", nil)
	if page1["total"].(float64) != 3 || len(page1["jobs"].([]any)) != 2 || len(page2["jobs"].([]any)) != 1 {
		t.Fatalf("pagination wrong: page1=%v page2=%v", page1, page2)
	}
	first := page1["jobs"].([]any)[0].(map[string]any)
	if first["id"] != ids[1] || first["released"] != true {
		t.Fatalf("history must lead the listing: %v", first)
	}
	last := page2["jobs"].([]any)[0].(map[string]any)
	if last["id"] != ids[3] {
		t.Fatalf("live job must close the listing: %v", last)
	}

	// Job counts include the evicted summary: metrics never run backwards.
	code, jm := httpJSON(t, c, "GET", ts.URL+"/v1/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", code)
	}
	if jobs, _ := jm["jobs"].(map[string]any); jobs["done"].(float64) != 4 {
		t.Fatalf("metrics must count evicted history: %v", jm["jobs"])
	}

	// Watching a compacted job replays its terminal summary.
	resp, err := c.Get(ts.URL + "/v1/jobs/" + ids[1] + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q", ct)
	}
	ev := readSSE(t, resp.Body, 1)
	if len(ev) != 1 || ev[0].State != server.StateDone || !ev[0].Terminal() {
		t.Fatalf("compacted watch replay = %+v, want terminal done", ev)
	}
}

// TestHTTPEventStream checks the raw SSE wire format: replayed and live
// events arrive ordered, progress precedes the terminal state, and the
// stream ends after it.
func TestHTTPEventStream(t *testing.T) {
	svc := startService(t, server.Config{}, testEdges(), 300)
	ts := httptest.NewServer(svc.Handler(nil))
	defer ts.Close()
	c := ts.Client()

	_, st := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "pagerank"})
	id := st["id"].(string)
	resp, err := c.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body, 0) // 0: read until the stream closes
	if len(events) < 3 {
		t.Fatalf("only %d events: %+v", len(events), events)
	}
	var lastSeq int64
	sawProgress := false
	for i, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("event %d out of order: %+v", i, events)
		}
		lastSeq = ev.Seq
		if ev.JobID != id {
			t.Fatalf("event for wrong job: %+v", ev)
		}
		if ev.Type == api.EventProgress {
			sawProgress = true
		}
		if ev.Terminal() && i != len(events)-1 {
			t.Fatalf("terminal event not last: %+v", events)
		}
	}
	if !sawProgress {
		t.Fatalf("no progress events in %+v", events)
	}
	final := events[len(events)-1]
	if !final.Terminal() || final.State != server.StateDone || final.Iteration == 0 {
		t.Fatalf("final event = %+v, want terminal done with iterations", final)
	}
}

// readSSE parses api.Events off an SSE stream; n > 0 stops after n events,
// n == 0 reads until the stream ends.
func readSSE(t *testing.T, r io.Reader, n int) []api.Event {
	t.Helper()
	var out []api.Event
	sc := bufio.NewScanner(r)
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			var ev api.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			out = append(out, ev)
			data = ""
			if n > 0 && len(out) == n {
				return out
			}
		}
	}
	return out
}

func contextWithTimeout(t *testing.T) (ctx context.Context, cancel context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 30*time.Second)
}

// TestHTTPDeltasAndListFilters covers the streaming-ingestion endpoint and
// the filtered job listing: POST /v1/deltas validation and flushing, state
// and label query filters on GET /v1/jobs, and the ingest counters in both
// metrics surfaces.
func TestHTTPDeltasAndListFilters(t *testing.T) {
	svc := startService(t, server.Config{}, testEdges(), 300)
	ts := httptest.NewServer(svc.Handler(nil))
	defer ts.Close()
	c := ts.Client()

	// Unknown fields and bad mutations are rejected with bad_request.
	if code, body := httpJSON(t, c, "POST", ts.URL+"/v1/deltas", map[string]any{"mutationss": []any{}}); code != http.StatusBadRequest || errCode(t, body) != string(api.CodeBadRequest) {
		t.Fatalf("unknown field = %d (%v)", code, body)
	}
	if code, body := httpJSON(t, c, "POST", ts.URL+"/v1/deltas", map[string]any{
		"mutations": []any{map[string]any{"slot": 1 << 30, "edge": []float64{1, 2, 1}}},
	}); code != http.StatusBadRequest || errCode(t, body) != string(api.CodeBadRequest) {
		t.Fatalf("out-of-range slot = %d (%v)", code, body)
	}
	if code, body := httpJSON(t, c, "POST", ts.URL+"/v1/deltas", map[string]any{
		"mutations": []any{map[string]any{"op": "add", "slot": 0, "edge": []float64{1, 2, 1}}},
	}); code != http.StatusBadRequest || errCode(t, body) != string(api.CodeBadRequest) {
		t.Fatalf("unknown op = %d (%v)", code, body)
	}

	// A valid flushed batch materializes a snapshot.
	code, ack := httpJSON(t, c, "POST", ts.URL+"/v1/deltas", map[string]any{
		"mutations": []any{
			map[string]any{"slot": 0, "edge": []float64{7, 9, 2.5}},
			map[string]any{"op": "rewrite", "slot": 1, "edge": []float64{3, 4, 1.5}},
		},
		"flush": true,
	})
	if code != http.StatusOK || ack["flushed"] != true || ack["accepted"] != float64(2) {
		t.Fatalf("POST /v1/deltas = %d (%v)", code, ack)
	}

	// Two labelled jobs; wait for both, then filter the listing.
	code, a := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{
		"algo": "pagerank", "labels": map[string]string{"team": "growth"},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit a = %d", code)
	}
	code, b := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{
		"algo": "degree", "labels": map[string]string{"team": "infra"},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit b = %d", code)
	}
	aID, bID := a["id"].(string), b["id"].(string)
	pollState(t, c, ts.URL, aID, server.StateDone)
	pollState(t, c, ts.URL, bID, server.StateDone)

	if code, body := httpJSON(t, c, "GET", ts.URL+"/v1/jobs?state=bogus", nil); code != http.StatusBadRequest || errCode(t, body) != string(api.CodeBadRequest) {
		t.Fatalf("bogus state filter = %d (%v)", code, body)
	}
	if code, body := httpJSON(t, c, "GET", ts.URL+"/v1/jobs?label=noequals", nil); code != http.StatusBadRequest || errCode(t, body) != string(api.CodeBadRequest) {
		t.Fatalf("bad label filter = %d (%v)", code, body)
	}
	// A repeated label key with a different value can never match; it is
	// rejected rather than silently last-wins.
	if code, body := httpJSON(t, c, "GET", ts.URL+"/v1/jobs?label=team%3Dgrowth&label=team%3Dinfra", nil); code != http.StatusBadRequest || errCode(t, body) != string(api.CodeBadRequest) {
		t.Fatalf("conflicting label filters = %d (%v)", code, body)
	}
	code, list := httpJSON(t, c, "GET", ts.URL+"/v1/jobs?state=done&label=team%3Dgrowth", nil)
	if code != http.StatusOK || list["total"] != float64(1) {
		t.Fatalf("filtered list = %d (%v), want exactly the growth job", code, list)
	}
	jobs := list["jobs"].([]any)
	if got := jobs[0].(map[string]any)["id"]; got != aID {
		t.Fatalf("filtered list returned %v, want %s", got, aID)
	}
	if code, list := httpJSON(t, c, "GET", ts.URL+"/v1/jobs?state=cancelled", nil); code != http.StatusOK || list["total"] != float64(0) {
		t.Fatalf("empty filter = %d (%v)", code, list)
	}

	// Ingest counters surface in the structured metrics…
	code, m := httpJSON(t, c, "GET", ts.URL+"/v1/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", code)
	}
	ing, ok := m["ingest"].(map[string]any)
	if !ok || ing["batches"] != float64(1) || ing["snapshots_built"] != float64(1) || ing["snapshots_live"] != float64(2) {
		t.Fatalf("ingest metrics = %v", m["ingest"])
	}
	// …and in the Prometheus exposition, along with per-group makespan.
	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"cgraph_ingest_batches_total 1",
		"cgraph_ingest_flushes_total{trigger=\"manual\"} 1",
		"cgraph_snapshots_live 2",
		"cgraph_sched_group_makespan_us",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Prometheus exposition missing %q:\n%s", want, text)
		}
	}
}

// TestHTTPStructuralDeltasAndAdmission covers the structural mutation ops
// end-to-end over HTTP — add_edge/remove_edge/add_vertex grow the graph,
// the per-op counters and retained-window bounds surface in both metrics
// exposures — and the ingest admission cap shedding with 429
// ingest_saturated.
func TestHTTPStructuralDeltasAndAdmission(t *testing.T) {
	sys := cgraph.NewSystem(cgraph.WithWorkers(2), cgraph.WithCoreSubgraph(false), cgraph.WithIngestCap(64))
	if err := sys.LoadEdges(300, testEdges()); err != nil {
		t.Fatal(err)
	}
	svc := server.New(sys, server.Config{})
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := contextWithTimeout(t)
		defer cancel()
		svc.Stop(ctx)
	}()
	ts := httptest.NewServer(svc.Handler(nil))
	defer ts.Close()
	c := ts.Client()

	// A structural batch: two users join, follow each other and an
	// existing account, and one old follow is dropped.
	code, ack := httpJSON(t, c, "POST", ts.URL+"/v1/deltas", map[string]any{
		"mutations": []any{
			map[string]any{"op": "add_vertex", "vertex": 300},
			map[string]any{"op": "add_vertex", "vertex": 301},
			map[string]any{"op": "add_edge", "edge": []float64{300, 301, 1}},
			map[string]any{"op": "add_edge", "edge": []float64{301, 5, 1}},
			map[string]any{"op": "remove_edge", "edge": []float64{999, 999}},
		},
		"flush": true,
	})
	if code != http.StatusOK || ack["flushed"] != true || ack["accepted"] != float64(5) {
		t.Fatalf("structural delta = %d (%v)", code, ack)
	}

	code, m := httpJSON(t, c, "GET", ts.URL+"/v1/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", code)
	}
	ing := m["ingest"].(map[string]any)
	if ing["edge_adds"] != float64(2) || ing["vertex_adds"] != float64(2) || ing["edge_removes"] != float64(1) {
		t.Fatalf("per-op counters = %v", ing)
	}
	if ing["remove_misses"] != float64(1) {
		t.Fatalf("remove_misses = %v, want 1", ing["remove_misses"])
	}
	if ing["num_vertices"] != float64(302) {
		t.Fatalf("num_vertices = %v, want 302", ing["num_vertices"])
	}
	// Retained-window bounds: base seq 0 through the delta-built seq 1.
	if ing["oldest_seq"] != float64(0) || ing["newest_seq"] != float64(1) || ing["newest_timestamp"] != float64(1) {
		t.Fatalf("window bounds = %v", ing)
	}

	// A job sees the grown graph.
	_, st := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "degree"})
	id := st["id"].(string)
	pollState(t, c, ts.URL, id, server.StateDone)
	code, res := httpJSON(t, c, "GET", ts.URL+"/v1/jobs/"+id+"/results", nil)
	if code != http.StatusOK || res["num_vertices"] != float64(302) {
		t.Fatalf("results over grown graph = %d (%v)", code, res)
	}

	// Unknown structural op strings are still rejected.
	if code, body := httpJSON(t, c, "POST", ts.URL+"/v1/deltas", map[string]any{
		"mutations": []any{map[string]any{"op": "drop_vertex", "vertex": 3}},
	}); code != http.StatusBadRequest || errCode(t, body) != string(api.CodeBadRequest) {
		t.Fatalf("unknown op = %d (%v)", code, body)
	}
	// Garbage wire endpoints (negative, fractional, absurd) never reach
	// the lossy float->uint32 conversion.
	for _, edge := range [][]float64{{-1, 5, 1}, {1.5, 5, 1}, {1e300, 5, 1}} {
		if code, body := httpJSON(t, c, "POST", ts.URL+"/v1/deltas", map[string]any{
			"mutations": []any{map[string]any{"op": "add_edge", "edge": edge}},
		}); code != http.StatusBadRequest || errCode(t, body) != string(api.CodeBadRequest) {
			t.Fatalf("garbage endpoint %v = %d (%v)", edge, code, body)
		}
	}
	// A single batch larger than the cap is shed outright, not admitted.
	huge := make([]any, 65)
	for i := range huge {
		huge[i] = map[string]any{"op": "add_edge", "edge": []float64{float64(i), float64(i + 1), 1}}
	}
	if code, body := httpJSON(t, c, "POST", ts.URL+"/v1/deltas", map[string]any{"mutations": huge}); code != http.StatusTooManyRequests || errCode(t, body) != string(api.CodeIngestSaturated) {
		t.Fatalf("oversized batch = %d (%v), want 429", code, body)
	}

	// Saturate the buffer (cap 64): one oversized unflushed batch fills
	// it, the next batch sheds with 429 ingest_saturated.
	fill := make([]any, 64)
	for i := range fill {
		fill[i] = map[string]any{"op": "add_edge", "edge": []float64{float64(i), float64(i + 1), 1}}
	}
	if code, ack := httpJSON(t, c, "POST", ts.URL+"/v1/deltas", map[string]any{"mutations": fill}); code != http.StatusOK {
		t.Fatalf("fill batch = %d (%v)", code, ack)
	}
	code, body := httpJSON(t, c, "POST", ts.URL+"/v1/deltas", map[string]any{
		"mutations": []any{map[string]any{"op": "add_edge", "edge": []float64{1, 2, 1}}},
	})
	if code != http.StatusTooManyRequests || errCode(t, body) != string(api.CodeIngestSaturated) {
		t.Fatalf("saturated delta = %d (%v), want 429 ingest_saturated", code, body)
	}
	if code, m := httpJSON(t, c, "GET", ts.URL+"/v1/metrics", nil); code != http.StatusOK {
		t.Fatal("metrics after shed")
	} else if ing := m["ingest"].(map[string]any); ing["shed"] != float64(2) {
		// The oversized batch above and the saturated batch each shed once.
		t.Fatalf("shed counter = %v, want 2", ing["shed"])
	}
	// A flush drains the buffer and admission reopens.
	if code, _ := httpJSON(t, c, "POST", ts.URL+"/v1/deltas", map[string]any{"mutations": []any{}, "flush": true}); code != http.StatusOK {
		t.Fatalf("drain flush = %d", code)
	}
	if code, _ := httpJSON(t, c, "POST", ts.URL+"/v1/deltas", map[string]any{
		"mutations": []any{map[string]any{"op": "add_edge", "edge": []float64{1, 2, 1}}},
	}); code != http.StatusOK {
		t.Fatalf("delta after drain = %d", code)
	}

	// The new gauges ride the Prometheus exposition.
	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"cgraph_ingest_ops_total{op=\"add_edge\"}",
		"cgraph_ingest_ops_total{op=\"remove_edge\"} 1",
		"cgraph_ingest_ops_total{op=\"add_vertex\"} 2",
		"cgraph_ingest_shed_total 2",
		"cgraph_snapshot_window_oldest_seq 0",
		"cgraph_snapshot_window_newest_seq",
		"cgraph_graph_vertices 302",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Prometheus exposition missing %q:\n%s", want, text)
		}
	}
}

// TestHTTPEventStreamResume: a watcher reconnecting with Last-Event-ID
// resumes strictly after the last event it saw instead of replaying the
// job's full history.
func TestHTTPEventStreamResume(t *testing.T) {
	svc := startService(t, server.Config{}, testEdges(), 300)
	ts := httptest.NewServer(svc.Handler(nil))
	defer ts.Close()
	c := ts.Client()

	_, st := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "pagerank"})
	id := st["id"].(string)
	pollState(t, c, ts.URL, id, server.StateDone)

	// First connection: full replay.
	resp, err := c.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	full := readSSE(t, resp.Body, 0)
	resp.Body.Close()
	if len(full) < 3 || !full[len(full)-1].Terminal() {
		t.Fatalf("full replay = %+v", full)
	}

	// Resume after the first event: the replay must start strictly later
	// and still end with the same terminal event.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", fmt.Sprint(full[0].Seq))
	resp, err = c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resumed := readSSE(t, resp.Body, 0)
	resp.Body.Close()
	if len(resumed) == 0 || resumed[0].Seq <= full[0].Seq {
		t.Fatalf("resumed replay did not skip: %+v", resumed)
	}
	if last := resumed[len(resumed)-1]; !last.Terminal() || last.Seq != full[len(full)-1].Seq {
		t.Fatalf("resumed replay terminal = %+v, want %+v", last, full[len(full)-1])
	}

	// Resume after the terminal event: nothing remains, the stream just
	// closes.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(full[len(full)-1].Seq))
	resp, err = c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if events := readSSE(t, resp.Body, 0); len(events) != 0 {
		t.Fatalf("post-terminal resume replayed %+v", events)
	}
	resp.Body.Close()

	// A malformed Last-Event-ID is rejected.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	req.Header.Set("Last-Event-ID", "bogus")
	resp, err = c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus Last-Event-ID = %d, want 400", resp.StatusCode)
	}
}

// TestHTTPResumeCompactedJob: a watcher reconnecting after its job was
// compacted into the history ring still receives the synthesized terminal
// event — with a Seq above its Last-Event-ID, so seq-deduplicating clients
// do not drop it.
func TestHTTPResumeCompactedJob(t *testing.T) {
	svc := startService(t, server.Config{RetainTerminal: 1}, testEdges(), 300)
	ts := httptest.NewServer(svc.Handler(nil))
	defer ts.Close()
	c := ts.Client()

	_, a := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "pagerank"})
	aID := a["id"].(string)
	pollState(t, c, ts.URL, aID, server.StateDone)
	_, b := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "degree"})
	pollState(t, c, ts.URL, b["id"].(string), server.StateDone)

	// Job a is now compacted (retain cap 1). A reconnect that saw up to
	// seq 5 must still get the terminal event, with a higher seq.
	if code, st := httpJSON(t, c, "GET", ts.URL+"/v1/jobs/"+aID, nil); code != http.StatusOK || st["released"] != true {
		t.Fatalf("job %s not compacted: %d %v", aID, code, st)
	}
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+aID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "5")
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, resp.Body, 0)
	resp.Body.Close()
	if len(events) != 1 || !events[0].Terminal() || events[0].Seq <= 5 {
		t.Fatalf("compacted resume = %+v, want one terminal event with seq > 5", events)
	}
}

// TestHTTPExecModeWire drives the exec-mode vertical through the wire
// contract: per-job exec_mode is validated, echoed on status, and the
// fresh-state counters surface in both /v1/metrics and the Prometheus text
// exposition. Default submissions keep exec_mode off the wire entirely so
// pre-mode clients see byte-identical payloads.
func TestHTTPExecModeWire(t *testing.T) {
	edges := gen.RMAT(43, 400, 8000, 0.57, 0.19, 0.19)
	sys := cgraph.NewSystem(cgraph.WithWorkers(2), cgraph.WithCoreSubgraph(false))
	if err := sys.LoadEdges(400, edges); err != nil {
		t.Fatal(err)
	}
	svc := server.New(sys, server.Config{})
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := contextWithTimeout(t)
		defer cancel()
		svc.Stop(ctx)
	}()
	// Tighten PageRank's tolerance so every mode can be checked against the
	// reference implementation, not just against each other.
	reg := server.DefaultRegistry()
	reg["pagerank"] = func(server.ProgramParams) model.Program {
		return &algo.PageRank{Damping: 0.85, Epsilon: 1e-9}
	}
	ts := httptest.NewServer(svc.Handler(reg))
	defer ts.Close()
	c := ts.Client()

	// Bad requests are rejected before a job is created.
	code, body := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{
		"algo": "pagerank", "exec_mode": "bogus",
	})
	if code != http.StatusBadRequest || errCode(t, body) != string(api.CodeBadRequest) {
		t.Fatalf("bogus exec_mode = %d %v, want 400 bad_request", code, body)
	}
	code, body = httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{
		"algo": "pagerank", "exec_mode": "delayed", "staleness": -2,
	})
	if code != http.StatusBadRequest || errCode(t, body) != string(api.CodeBadRequest) {
		t.Fatalf("negative staleness = %d %v, want 400 bad_request", code, body)
	}

	// One job per mode; the default submission must not carry exec_mode.
	submit := func(spec map[string]any) string {
		t.Helper()
		code, st := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", spec)
		if code != http.StatusAccepted {
			t.Fatalf("POST /v1/jobs %v = %d (%v)", spec, code, st)
		}
		return st["id"].(string)
	}
	defID := submit(map[string]any{"algo": "pagerank"})
	asyncID := submit(map[string]any{"algo": "pagerank", "exec_mode": "async"})
	delayID := submit(map[string]any{"algo": "pagerank", "exec_mode": "delayed", "staleness": 2})

	defSt := pollState(t, c, ts.URL, defID, server.StateDone)
	if _, present := defSt["exec_mode"]; present {
		t.Fatalf("default job leaked exec_mode on the wire: %v", defSt)
	}
	asyncSt := pollState(t, c, ts.URL, asyncID, server.StateDone)
	if asyncSt["exec_mode"] != "async" {
		t.Fatalf("async job status = %v, want exec_mode async", asyncSt)
	}
	delaySt := pollState(t, c, ts.URL, delayID, server.StateDone)
	if delaySt["exec_mode"] != "delayed" {
		t.Fatalf("delayed job status = %v, want exec_mode delayed", delaySt)
	}

	// Results still match the reference implementation in every mode.
	g := graph.Build(400, edges)
	want := refimpl.PageRank(g, 0.85, 1e-12, 3000)
	for _, id := range []string{defID, asyncID, delayID} {
		code, res := httpJSON(t, c, "GET", ts.URL+"/v1/jobs/"+id+"/results", nil)
		if code != http.StatusOK {
			t.Fatalf("GET results %s = %d (%v)", id, code, res)
		}
		vals := res["values"].([]any)
		for v := range want {
			if math.Abs(vals[v].(float64)-want[v]) > 1e-6 {
				t.Fatalf("job %s vertex %d: got %v want %v", id, v, vals[v], want[v])
			}
		}
	}

	// Structured metrics carry the fresh-state counters and per-mode tallies.
	code, m := httpJSON(t, c, "GET", ts.URL+"/v1/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", code)
	}
	ex, _ := m["exec"].(map[string]any)
	if ex == nil {
		t.Fatalf("metrics missing exec block: %v", m)
	}
	if ff, _ := ex["fresh_folds"].(float64); ff <= 0 {
		t.Fatalf("exec.fresh_folds = %v, want > 0", ex["fresh_folds"])
	}
	if aj, _ := ex["async_jobs"].(float64); aj != 1 {
		t.Fatalf("exec.async_jobs = %v, want 1", ex["async_jobs"])
	}
	if dj, _ := ex["delayed_jobs"].(float64); dj != 1 {
		t.Fatalf("exec.delayed_jobs = %v, want 1", ex["delayed_jobs"])
	}
	if bj, _ := ex["bsp_jobs"].(float64); bj < 1 {
		t.Fatalf("exec.bsp_jobs = %v, want >= 1", ex["bsp_jobs"])
	}

	// Prometheus text exposition declares the mode-labeled families.
	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"cgraph_exec_fresh_folds_total",
		`cgraph_exec_barriers_total{result="skipped"}`,
		`cgraph_exec_barriers_total{result="forced"}`,
		`cgraph_exec_mode_jobs{cgraph_exec_mode="async"} 1`,
		`cgraph_exec_mode_jobs{cgraph_exec_mode="delayed"} 1`,
		"cgraph_ingest_compactions_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Prometheus exposition missing %q:\n%s", want, text)
		}
	}
}
