package server_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"cgraph"
	"cgraph/algo"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/refimpl"
	"cgraph/internal/testutil"
	"cgraph/model"
	"cgraph/server"
)

// spinProgram never converges, giving cancellation and backpressure tests a
// job that is deterministically still in flight.
type spinProgram struct{}

func (spinProgram) Name() string                { return "Spin" }
func (spinProgram) Direction() model.Direction  { return model.Out }
func (spinProgram) Identity() float64           { return 0 }
func (spinProgram) Acc(a, c float64) float64    { return a + c }
func (spinProgram) IsActive(s model.State) bool { return true }
func (spinProgram) Init(v model.VertexID, g model.GraphInfo) (model.State, bool) {
	return model.State{}, true
}
func (spinProgram) Apply(v model.VertexID, s *model.State, deg int) (float64, bool) {
	s.Delta = 0
	return 1, true
}
func (spinProgram) Contribution(seed float64, w float32) float64 { return seed }

func testEdges() []model.Edge {
	return gen.RMAT(41, 300, 5000, 0.57, 0.19, 0.19)
}

func startService(t *testing.T, cfg server.Config, edges []model.Edge, n int) *server.Service {
	t.Helper()
	sys := cgraph.NewSystem(cgraph.WithWorkers(2), cgraph.WithCoreSubgraph(false))
	if err := sys.LoadEdges(n, edges); err != nil {
		t.Fatal(err)
	}
	svc := server.New(sys, cfg)
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Stop(ctx)
	})
	return svc
}

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestServiceSubmitWhileRunningAndResultsAfterDone(t *testing.T) {
	edges := testEdges()
	svc := startService(t, server.Config{}, edges, 300)

	pr, err := svc.Submit(server.Spec{Program: &algo.PageRank{Damping: 0.85, Epsilon: 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	// Second job lands while the first iterates.
	ss, err := svc.Submit(server.Spec{Program: algo.NewSSSP(0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Wait(waitCtx(t)); err != nil {
		t.Fatalf("pagerank wait: %v", err)
	}
	if err := ss.Wait(waitCtx(t)); err != nil {
		t.Fatalf("sssp wait: %v", err)
	}

	g := graph.Build(300, edges)
	prRes, err := pr.Results()
	if err != nil {
		t.Fatal(err)
	}
	wantPR := refimpl.PageRank(g, 0.85, 1e-12, 3000)
	for v := range prRes {
		if math.Abs(prRes[v]-wantPR[v]) > 1e-6 {
			t.Fatalf("pagerank vertex %d: got %v want %v", v, prRes[v], wantPR[v])
		}
	}
	ssRes, err := ss.Results()
	if err != nil {
		t.Fatal(err)
	}
	wantSS := refimpl.SSSP(g, 0)
	for v := range ssRes {
		if ssRes[v] != wantSS[v] && !(math.IsInf(ssRes[v], 1) && math.IsInf(wantSS[v], 1)) {
			t.Fatalf("sssp vertex %d: got %v want %v", v, ssRes[v], wantSS[v])
		}
	}

	st := pr.Status()
	if st.State != server.StateDone || st.Iterations == 0 || st.Started == nil || st.Finished == nil {
		t.Fatalf("done status not populated: %+v", st)
	}
}

func TestServiceCancelRunningJob(t *testing.T) {
	svc := startService(t, server.Config{}, testEdges(), 300)
	spin, err := svc.Submit(server.Spec{Program: spinProgram{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Cancel(spin.ID()); err != nil {
		t.Fatal(err)
	}
	if err := spin.Wait(waitCtx(t)); !errors.Is(err, cgraph.ErrCancelled) {
		t.Fatalf("wait after cancel = %v, want ErrCancelled", err)
	}
	if spin.State() != server.StateCancelled {
		t.Fatalf("state = %v, want cancelled", spin.State())
	}
	if _, err := spin.Results(); err == nil {
		t.Fatal("results of a cancelled job must error")
	}
	if err := spin.Cancel(); err == nil {
		t.Fatal("cancelling a terminal job must error")
	}
	if err := svc.Cancel("job-999"); err == nil {
		t.Fatal("cancelling an unknown id must error")
	}
}

func TestServiceDeadlineExpiry(t *testing.T) {
	svc := startService(t, server.Config{}, testEdges(), 300)
	spin, err := svc.Submit(server.Spec{Program: spinProgram{}, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := spin.Wait(waitCtx(t)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait = %v, want DeadlineExceeded", err)
	}
	if spin.State() != server.StateFailed {
		t.Fatalf("state = %v, want failed", spin.State())
	}
}

func TestServiceFIFOBackpressure(t *testing.T) {
	svc := startService(t, server.Config{MaxInFlight: 1}, testEdges(), 300)
	spin, err := svc.Submit(server.Spec{Program: spinProgram{}})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := svc.Submit(server.Spec{Program: algo.NewBFS(0)})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := svc.Submit(server.Spec{Program: algo.NewBFS(1)})
	if err != nil {
		t.Fatal(err)
	}
	if b1.State() != server.StateQueued || b2.State() != server.StateQueued {
		t.Fatalf("queued states = %v/%v, want queued/queued", b1.State(), b2.State())
	}

	// Cancelling a queued job resolves it immediately, without a slot.
	if err := b2.Cancel(); err != nil {
		t.Fatal(err)
	}
	if b2.State() != server.StateCancelled {
		t.Fatalf("queued-cancel state = %v", b2.State())
	}

	// Freeing the slot launches the queue head.
	if err := spin.Cancel(); err != nil {
		t.Fatal(err)
	}
	if err := b1.Wait(waitCtx(t)); err != nil {
		t.Fatalf("queued job never ran: %v", err)
	}
	if _, err := b1.Results(); err != nil {
		t.Fatal(err)
	}
}

// TestServicePriorityAdmission: at the in-flight cap, waiting jobs leave
// the queue highest priority first, FIFO within a priority.
func TestServicePriorityAdmission(t *testing.T) {
	svc := startService(t, server.Config{MaxInFlight: 1}, testEdges(), 300)
	spin, err := svc.Submit(server.Spec{Program: spinProgram{}})
	if err != nil {
		t.Fatal(err)
	}
	low, err := svc.Submit(server.Spec{Program: algo.NewBFS(0)})
	if err != nil {
		t.Fatal(err)
	}
	high, err := svc.Submit(server.Spec{Program: algo.NewBFS(1), Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	high2, err := svc.Submit(server.Spec{Program: algo.NewBFS(2), Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := spin.Cancel(); err != nil {
		t.Fatal(err)
	}
	// With one slot, completion order is admission order: both priority-5
	// jobs (in submission order) before the earlier priority-0 one.
	for _, j := range []*server.Job{high, high2, low} {
		if err := j.Wait(waitCtx(t)); err != nil {
			t.Fatal(err)
		}
	}
	started := func(j *server.Job) time.Time {
		st := j.Status()
		if st.Started == nil {
			t.Fatalf("job %s never started", j.ID())
		}
		return *st.Started
	}
	if !(started(high).Before(started(high2)) && started(high2).Before(started(low))) {
		t.Fatalf("admission order wrong: high=%v high2=%v low=%v",
			started(high), started(high2), started(low))
	}
}

func TestServiceSnapshotIngestionWhileServing(t *testing.T) {
	edges := testEdges()
	svc := startService(t, server.Config{}, edges, 300)

	// Converge one job against the base snapshot first.
	ss, err := svc.Submit(server.Spec{Program: algo.NewSSSP(0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}

	// Reject malformed snapshots: the edge list must keep the base length.
	if err := svc.AddSnapshot(edges[:len(edges)-5], 10); err == nil {
		t.Fatal("short snapshot edge list must be rejected")
	}

	mut, _ := gen.Mutate(edges, 0.05, 300, 7)
	if err := svc.AddSnapshot(mut, 10); err != nil {
		t.Fatal(err)
	}
	ts := int64(10)
	ss2, err := svc.Submit(server.Spec{Program: algo.NewSSSP(0), Arrival: &ts})
	if err != nil {
		t.Fatal(err)
	}
	if err := ss2.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	res, err := ss2.Results()
	if err != nil {
		t.Fatal(err)
	}
	want := refimpl.SSSP(graph.Build(300, mut), 0)
	for v := range res {
		if res[v] != want[v] && !(math.IsInf(res[v], 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("post-snapshot sssp vertex %d: got %v want %v", v, res[v], want[v])
		}
	}
}

func TestServiceStopFailsResidentJobs(t *testing.T) {
	edges := testEdges()
	sys := cgraph.NewSystem(cgraph.WithWorkers(2), cgraph.WithCoreSubgraph(false))
	if err := sys.LoadEdges(300, edges); err != nil {
		t.Fatal(err)
	}
	svc := server.New(sys, server.Config{MaxInFlight: 1})
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	spin, err := svc.Submit(server.Spec{Program: spinProgram{}})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := svc.Submit(server.Spec{Program: algo.NewBFS(0)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	for _, j := range []*server.Job{spin, queued} {
		if err := j.Wait(ctx); !errors.Is(err, server.ErrStopped) {
			t.Fatalf("job %s after stop: err = %v, want ErrStopped", j.ID(), err)
		}
		if j.State() != server.StateFailed {
			t.Fatalf("job %s state = %v, want failed", j.ID(), j.State())
		}
	}
	if _, err := svc.Submit(server.Spec{Program: algo.NewBFS(0)}); !errors.Is(err, server.ErrStopped) {
		t.Fatalf("submit after stop = %v, want ErrStopped", err)
	}
	if err := svc.Start(); err == nil {
		t.Fatal("restart after stop must error")
	}
}

func TestServiceStatusList(t *testing.T) {
	svc := startService(t, server.Config{}, testEdges(), 300)
	j1, _ := svc.Submit(server.Spec{Program: algo.NewBFS(0)})
	j2, _ := svc.Submit(server.Spec{Program: algo.NewBFS(1)})
	if err := j1.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	list := svc.List()
	if len(list) != 2 || list[0].ID != j1.ID() || list[1].ID != j2.ID() {
		t.Fatalf("list wrong: %+v", list)
	}
	for _, st := range list {
		if st.State != server.StateDone {
			t.Fatalf("job %s state %v, want done", st.ID, st.State)
		}
	}
}

func TestServiceQueuedJobHonoursDeadline(t *testing.T) {
	svc := startService(t, server.Config{MaxInFlight: 1}, testEdges(), 300)
	spin, err := svc.Submit(server.Spec{Program: spinProgram{}})
	if err != nil {
		t.Fatal(err)
	}
	// The slot never frees, so the deadline must fire while queued.
	queued, err := svc.Submit(server.Spec{Program: algo.NewBFS(0), Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if queued.State() != server.StateQueued {
		t.Fatalf("state = %v, want queued", queued.State())
	}
	if err := queued.Wait(waitCtx(t)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued wait = %v, want DeadlineExceeded", err)
	}
	if queued.State() != server.StateFailed {
		t.Fatalf("state = %v, want failed", queued.State())
	}
	// The spinner is unaffected and the slot accounting survives: cancel
	// it and run a fresh job through.
	if err := spin.Cancel(); err != nil {
		t.Fatal(err)
	}
	after, err := svc.Submit(server.Spec{Program: algo.NewBFS(0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := after.Wait(waitCtx(t)); err != nil {
		t.Fatalf("post-deadline job: %v", err)
	}
}

func TestServiceSurfacesDeadRoundLoop(t *testing.T) {
	edges := testEdges()
	sys := cgraph.NewSystem(cgraph.WithWorkers(2), cgraph.WithCoreSubgraph(false))
	if err := sys.LoadEdges(300, edges); err != nil {
		t.Fatal(err)
	}
	// Occupy the engine loop directly, so the service's Serve fails.
	serveDone := make(chan error, 1)
	go func() { serveDone <- sys.Serve(context.Background()) }()
	probe, err := sys.Submit(algo.NewBFS(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}

	svc := server.New(sys, server.Config{})
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	// The loop failure lands asynchronously; submissions must start
	// failing with the cause rather than hanging forever.
	testutil.WaitFor(t, 30*time.Second, func() bool {
		_, err := svc.Submit(server.Spec{Program: algo.NewBFS(0)})
		if err != nil && errors.Is(err, server.ErrStopped) {
			t.Fatalf("got bare ErrStopped, want the loop's own error")
		}
		return err != nil
	}, "submissions kept succeeding on a dead service")
	if err := sys.Shutdown(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	<-serveDone
}

func TestServiceReleasesEngineStateAfterDone(t *testing.T) {
	svc := startService(t, server.Config{}, testEdges(), 300)
	j, err := svc.Submit(server.Spec{Program: algo.NewBFS(0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	// The service retains the results after the engine copy is dropped.
	res, err := j.Results()
	if err != nil || len(res) != 300 {
		t.Fatalf("cached results broken: %d values, err %v", len(res), err)
	}
	if st := j.Status(); st.Iterations == 0 {
		t.Fatalf("metrics lost on release: %+v", st)
	}
}
