package algo

import (
	"math"
	"testing"
	"testing/quick"

	"cgraph/model"
)

// allPrograms lists one instance of every bundled program.
func allPrograms() []model.Program {
	return []model.Program{
		NewPageRank(), NewPPR(0), NewSSSP(0), NewBFS(0), NewWCC(),
		NewSSWP(0), NewKCore(3), NewDegree(), NewSCC(), NewHITS(), NewKatz(),
	}
}

// graphInfoStub satisfies model.GraphInfo for contract tests.
type graphInfoStub struct{ n int }

func (g graphInfoStub) NumVertices() int             { return g.n }
func (g graphInfoStub) OutDegree(model.VertexID) int { return 3 }
func (g graphInfoStub) InDegree(model.VertexID) int  { return 2 }

// TestAccIdentityContract: folding the identity into any value is a no-op,
// for every program — the property the engine's "skip identity deltas"
// optimization in Push depends on.
func TestAccIdentityContract(t *testing.T) {
	for _, p := range allPrograms() {
		ident := p.Identity()
		for _, v := range []float64{-3, 0, 0.5, 7, 1e9} {
			if got := p.Acc(ident, v); got != v {
				t.Fatalf("%s: Acc(identity, %v) = %v", p.Name(), v, got)
			}
			if got := p.Acc(v, ident); got != v {
				t.Fatalf("%s: Acc(%v, identity) = %v", p.Name(), v, got)
			}
		}
	}
}

// TestAccCommutativeAssociative property-tests the Acc algebra the paper
// requires ("Acc() is utilized for a vertex to accumulate contributions").
func TestAccCommutativeAssociative(t *testing.T) {
	for _, p := range allPrograms() {
		p := p
		f := func(a, b, c float64) bool {
			if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
				return true
			}
			if p.Acc(a, b) != p.Acc(b, a) {
				return false
			}
			l := p.Acc(p.Acc(a, b), c)
			r := p.Acc(a, p.Acc(b, c))
			if l == r {
				return true
			}
			// Float addition is only approximately associative.
			return math.Abs(l-r) <= 1e-9*math.Max(math.Abs(l), math.Abs(r))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

// TestApplyResetsDelta: the Apply contract requires the delta to be reset
// to the identity even when scatter is false.
func TestApplyResetsDelta(t *testing.T) {
	g := graphInfoStub{n: 10}
	for _, p := range allPrograms() {
		for v := model.VertexID(0); v < 10; v++ {
			s, _ := p.Init(v, g)
			p.Apply(v, &s, 3)
			if s.Delta != p.Identity() && !(math.IsNaN(s.Delta) && math.IsNaN(p.Identity())) {
				t.Fatalf("%s: Apply left delta %v (identity %v)", p.Name(), s.Delta, p.Identity())
			}
		}
	}
}

// TestIdentityIsInactiveAfterApply: right after applying, a vertex that
// received nothing must not report active (no busy-looping).
func TestIdentityIsInactiveAfterApply(t *testing.T) {
	g := graphInfoStub{n: 10}
	for _, p := range allPrograms() {
		s, _ := p.Init(5, g)
		p.Apply(5, &s, 3)
		if p.IsActive(s) {
			t.Fatalf("%s: vertex active with identity delta", p.Name())
		}
	}
}

// TestDirectionStability: non-phased programs must report a constant
// direction (engines cache it per phase).
func TestDirectionStability(t *testing.T) {
	for _, p := range allPrograms() {
		if _, phased := p.(model.Phased); phased {
			continue
		}
		d := p.Direction()
		for i := 0; i < 3; i++ {
			if p.Direction() != d {
				t.Fatalf("%s: direction changed without a phase boundary", p.Name())
			}
		}
	}
}

func TestPageRankApplySemantics(t *testing.T) {
	p := NewPageRank()
	s := model.State{Value: 1, Delta: 0.4}
	seed, scatter := p.Apply(0, &s, 4)
	if !scatter || s.Value != 1.4 || s.Delta != 0 {
		t.Fatalf("apply wrong: %+v scatter=%v", s, scatter)
	}
	want := 0.85 * 0.4 / 4
	if math.Abs(seed-want) > 1e-15 {
		t.Fatalf("seed = %v, want %v", seed, want)
	}
	// Dangling vertex: absorbs but never scatters.
	s = model.State{Value: 0, Delta: 0.3}
	if _, scatter := p.Apply(0, &s, 0); scatter {
		t.Fatal("dangling vertex must not scatter")
	}
}

func TestSSSPApplySemantics(t *testing.T) {
	p := NewSSSP(0)
	s := model.State{Value: 10, Delta: 7}
	seed, scatter := p.Apply(1, &s, 2)
	if !scatter || seed != 7 || s.Value != 7 {
		t.Fatalf("improvement not applied: %+v", s)
	}
	if got := p.Contribution(7, 2.5); got != 9.5 {
		t.Fatalf("Contribution = %v, want 9.5", got)
	}
	// Worse candidate: no scatter, value unchanged.
	s = model.State{Value: 5, Delta: 9}
	if _, scatter := p.Apply(1, &s, 2); scatter || s.Value != 5 {
		t.Fatalf("non-improvement handled wrong: %+v", s)
	}
}

func TestKCoreSemantics(t *testing.T) {
	p := NewKCore(3)
	g := graphInfoStub{n: 4} // degree 3+2 = 5
	s, active := p.Init(0, g)
	if !active || s.Value != 5 {
		t.Fatalf("init wrong: %+v", s)
	}
	// Loses three neighbours: 5-3 = 2 < 3 → leaves the core, fires once.
	s.Delta = -3
	seed, scatter := p.Apply(0, &s, 5)
	if !scatter || seed != -1 || s.Value != -1 {
		t.Fatalf("removal wrong: %+v seed=%v", s, seed)
	}
	// Already removed: further decrements never re-fire.
	s.Delta = -2
	if _, scatter := p.Apply(0, &s, 5); scatter {
		t.Fatal("removed vertex fired twice")
	}
	if p.Result(0, model.State{Value: 4}) != 4 || p.Result(0, model.State{Value: 2}) != -1 {
		t.Fatal("Result normalization wrong")
	}
}

func TestSCCFilterSemantics(t *testing.T) {
	p := NewSCC()
	// Forward phase accepts everything.
	if !p.Accept(model.State{Value: 5}, 9) {
		t.Fatal("forward phase must accept all contributions")
	}
	p.phase = 1
	// Backward phase: only the matching colour folds.
	if p.Accept(model.State{Value: 5}, 9) {
		t.Fatal("mismatched flag accepted")
	}
	if !p.Accept(model.State{Value: 9}, 9) {
		t.Fatal("matching flag rejected")
	}
}

func TestHITSPhaseMachine(t *testing.T) {
	p := NewHITS()
	g := graphInfoStub{n: 3}
	s, active := p.Init(0, g)
	if !active || s.Value != 1.0/3 {
		t.Fatalf("init wrong: %+v", s)
	}
	if p.Direction() != model.Out {
		t.Fatal("must start scattering hubs along out-edges")
	}
	if p.IsActive(model.State{Delta: 5}) {
		t.Fatal("HITS must not re-activate within a sweep")
	}
	seed, scatter := p.Apply(0, &s, 2)
	if !scatter || seed != 1.0/3 {
		t.Fatalf("hub scatter wrong: seed=%v", seed)
	}
	// Zero-score or dangling vertices stay quiet.
	z := model.State{Value: 0}
	if _, scatter := p.Apply(1, &z, 2); scatter {
		t.Fatal("zero-score vertex scattered")
	}
}

func TestKatzApplySemantics(t *testing.T) {
	p := &Katz{Alpha: 0.1, Beta: 1, Epsilon: 1e-9}
	s, active := p.Init(0, graphInfoStub{n: 2})
	if !active || s.Delta != 1 {
		t.Fatalf("init wrong: %+v", s)
	}
	seed, scatter := p.Apply(0, &s, 4)
	if !scatter || s.Value != 1 || math.Abs(seed-0.1) > 1e-15 {
		t.Fatalf("apply wrong: %+v seed=%v", s, seed)
	}
}

func TestSourcedProgramsActivateOnlySource(t *testing.T) {
	g := graphInfoStub{n: 8}
	for _, tc := range []struct {
		prog model.Program
		src  model.VertexID
	}{
		{NewSSSP(3), 3}, {NewBFS(3), 3}, {NewSSWP(3), 3}, {NewPPR(3), 3},
	} {
		for v := model.VertexID(0); v < 8; v++ {
			_, active := tc.prog.Init(v, g)
			if active != (v == tc.src) {
				t.Fatalf("%s: vertex %d activation = %v", tc.prog.Name(), v, active)
			}
		}
	}
}

func TestNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range allPrograms() {
		if seen[p.Name()] {
			t.Fatalf("duplicate program name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}
