// Package algo bundles the iterative graph algorithms evaluated in the paper
// (PageRank, SSSP, SCC, BFS — §4) plus the common companions a concurrent
// analytics platform runs alongside them (personalized PageRank, weakly
// connected components, k-core, widest path, degree), each expressed as a
// model.Program exactly as Fig. 7 instantiates PageRank and SSSP.
//
// Programs with job-private bookkeeping (SCC) must not be shared between
// jobs: construct one instance per job.
package algo

import (
	"math"

	"cgraph/model"
)

// PageRank is the delta-accumulative PageRank of Fig. 7(a): each vertex
// absorbs the accumulated Δ into its rank and forwards d·Δ/outdeg to its
// out-neighbours until every pending Δ falls below Epsilon. The fixed point
// satisfies rank = (1-d) + d·Σ_in rank(u)/outdeg(u).
type PageRank struct {
	Damping float64
	Epsilon float64
}

// NewPageRank returns PageRank with the conventional d=0.85, ε=1e-3.
func NewPageRank() *PageRank { return &PageRank{Damping: 0.85, Epsilon: 1e-3} }

func (p *PageRank) Name() string               { return "PageRank" }
func (p *PageRank) Direction() model.Direction { return model.Out }
func (p *PageRank) Identity() float64          { return 0 }
func (p *PageRank) Acc(a, b float64) float64   { return a + b }
func (p *PageRank) IsActive(s model.State) bool {
	return math.Abs(s.Delta) > p.Epsilon
}
func (p *PageRank) Init(model.VertexID, model.GraphInfo) (model.State, bool) {
	return model.State{Value: 0, Delta: 1 - p.Damping}, true
}
func (p *PageRank) Apply(_ model.VertexID, s *model.State, deg int) (float64, bool) {
	d := s.Delta
	s.Value += d
	s.Delta = 0
	if deg == 0 {
		return 0, false
	}
	return p.Damping * d / float64(deg), true
}
func (p *PageRank) Contribution(seed float64, _ float32) float64 { return seed }

// PPR is personalized PageRank: the random walk restarts at Source, so only
// the source injects initial mass.
type PPR struct {
	Source  model.VertexID
	Damping float64
	Epsilon float64
}

// NewPPR returns personalized PageRank from source with d=0.85, ε=1e-6.
func NewPPR(source model.VertexID) *PPR {
	return &PPR{Source: source, Damping: 0.85, Epsilon: 1e-6}
}

func (p *PPR) Name() string               { return "PPR" }
func (p *PPR) Direction() model.Direction { return model.Out }
func (p *PPR) Identity() float64          { return 0 }
func (p *PPR) Acc(a, b float64) float64   { return a + b }
func (p *PPR) IsActive(s model.State) bool {
	return math.Abs(s.Delta) > p.Epsilon
}
func (p *PPR) Init(v model.VertexID, _ model.GraphInfo) (model.State, bool) {
	if v == p.Source {
		return model.State{Value: 0, Delta: 1 - p.Damping}, true
	}
	return model.State{}, false
}
func (p *PPR) Apply(_ model.VertexID, s *model.State, deg int) (float64, bool) {
	d := s.Delta
	s.Value += d
	s.Delta = 0
	if deg == 0 {
		return 0, false
	}
	return p.Damping * d / float64(deg), true
}
func (p *PPR) Contribution(seed float64, _ float32) float64 { return seed }

// SSSP is the single-source shortest path of Fig. 7(b): min-accumulate
// candidate distances, relax out-edges on improvement.
type SSSP struct {
	Source model.VertexID
}

// NewSSSP returns SSSP from the given source.
func NewSSSP(source model.VertexID) *SSSP { return &SSSP{Source: source} }

func (p *SSSP) Name() string               { return "SSSP" }
func (p *SSSP) Direction() model.Direction { return model.Out }
func (p *SSSP) Identity() float64          { return model.Inf }
func (p *SSSP) Acc(a, b float64) float64   { return math.Min(a, b) }
func (p *SSSP) IsActive(s model.State) bool {
	return s.Delta < s.Value
}
func (p *SSSP) Init(v model.VertexID, _ model.GraphInfo) (model.State, bool) {
	if v == p.Source {
		return model.State{Value: model.Inf, Delta: 0}, true
	}
	return model.State{Value: model.Inf, Delta: model.Inf}, false
}
func (p *SSSP) Apply(_ model.VertexID, s *model.State, _ int) (float64, bool) {
	improved := s.Delta < s.Value
	if improved {
		s.Value = s.Delta
	}
	s.Delta = model.Inf
	return s.Value, improved
}
func (p *SSSP) Contribution(seed float64, w float32) float64 {
	return seed + float64(w)
}

// BFS computes hop distance from Source (SSSP over unit weights).
type BFS struct {
	Source model.VertexID
}

// NewBFS returns BFS from the given source.
func NewBFS(source model.VertexID) *BFS { return &BFS{Source: source} }

func (p *BFS) Name() string               { return "BFS" }
func (p *BFS) Direction() model.Direction { return model.Out }
func (p *BFS) Identity() float64          { return model.Inf }
func (p *BFS) Acc(a, b float64) float64   { return math.Min(a, b) }
func (p *BFS) IsActive(s model.State) bool {
	return s.Delta < s.Value
}
func (p *BFS) Init(v model.VertexID, _ model.GraphInfo) (model.State, bool) {
	if v == p.Source {
		return model.State{Value: model.Inf, Delta: 0}, true
	}
	return model.State{Value: model.Inf, Delta: model.Inf}, false
}
func (p *BFS) Apply(_ model.VertexID, s *model.State, _ int) (float64, bool) {
	improved := s.Delta < s.Value
	if improved {
		s.Value = s.Delta
	}
	s.Delta = model.Inf
	return s.Value, improved
}
func (p *BFS) Contribution(seed float64, _ float32) float64 { return seed + 1 }

// WCC labels each weakly connected component with its minimum vertex ID by
// min-label propagation over both edge directions.
type WCC struct{}

// NewWCC returns a weakly-connected-components program.
func NewWCC() *WCC { return &WCC{} }

func (p *WCC) Name() string               { return "WCC" }
func (p *WCC) Direction() model.Direction { return model.Both }
func (p *WCC) Identity() float64          { return model.Inf }
func (p *WCC) Acc(a, b float64) float64   { return math.Min(a, b) }
func (p *WCC) IsActive(s model.State) bool {
	return s.Delta < s.Value
}
func (p *WCC) Init(v model.VertexID, _ model.GraphInfo) (model.State, bool) {
	return model.State{Value: model.Inf, Delta: float64(v)}, true
}
func (p *WCC) Apply(_ model.VertexID, s *model.State, _ int) (float64, bool) {
	improved := s.Delta < s.Value
	if improved {
		s.Value = s.Delta
	}
	s.Delta = model.Inf
	return s.Value, improved
}
func (p *WCC) Contribution(seed float64, _ float32) float64 { return seed }

// SSWP computes the widest (maximum-bottleneck) path width from Source:
// max-accumulate, bottleneck on each edge.
type SSWP struct {
	Source model.VertexID
}

// NewSSWP returns a widest-path program from the given source.
func NewSSWP(source model.VertexID) *SSWP { return &SSWP{Source: source} }

func (p *SSWP) Name() string               { return "SSWP" }
func (p *SSWP) Direction() model.Direction { return model.Out }
func (p *SSWP) Identity() float64          { return math.Inf(-1) }
func (p *SSWP) Acc(a, b float64) float64   { return math.Max(a, b) }
func (p *SSWP) IsActive(s model.State) bool {
	return s.Delta > s.Value
}
func (p *SSWP) Init(v model.VertexID, _ model.GraphInfo) (model.State, bool) {
	if v == p.Source {
		return model.State{Value: 0, Delta: model.Inf}, true
	}
	return model.State{Value: 0, Delta: math.Inf(-1)}, false
}
func (p *SSWP) Apply(_ model.VertexID, s *model.State, _ int) (float64, bool) {
	improved := s.Delta > s.Value
	if improved {
		s.Value = s.Delta
	}
	s.Delta = math.Inf(-1)
	return s.Value, improved
}
func (p *SSWP) Contribution(seed float64, w float32) float64 {
	return math.Min(seed, float64(w))
}

// KCore marks the k-core: vertices keep their effective undirected degree as
// value; a vertex dropping below K removes itself (value becomes -1) and
// notifies every neighbour. At the fixed point, value >= K identifies the
// k-core members.
type KCore struct {
	K int
}

// NewKCore returns a k-core program for the given k.
func NewKCore(k int) *KCore { return &KCore{K: k} }

func (p *KCore) Name() string               { return "KCore" }
func (p *KCore) Direction() model.Direction { return model.Both }
func (p *KCore) Identity() float64          { return 0 }
func (p *KCore) Acc(a, b float64) float64   { return a + b }
func (p *KCore) IsActive(s model.State) bool {
	return s.Delta != 0
}
func (p *KCore) Init(v model.VertexID, g model.GraphInfo) (model.State, bool) {
	deg := g.OutDegree(v) + g.InDegree(v)
	return model.State{Value: float64(deg), Delta: 0}, true
}
func (p *KCore) Apply(_ model.VertexID, s *model.State, _ int) (float64, bool) {
	s.Value += s.Delta
	s.Delta = 0
	if s.Value >= 0 && s.Value < float64(p.K) {
		s.Value = -1 // leave the core, notify neighbours once
		return -1, true
	}
	return 0, false
}
func (p *KCore) Contribution(seed float64, _ float32) float64 { return seed }

// Degree is a one-iteration program assigning each vertex its out-degree;
// it exists as the cheapest possible smoke-test job.
type Degree struct{}

// NewDegree returns the degree program.
func NewDegree() *Degree { return &Degree{} }

func (p *Degree) Name() string                { return "Degree" }
func (p *Degree) Direction() model.Direction  { return model.Out }
func (p *Degree) Identity() float64           { return 0 }
func (p *Degree) Acc(a, b float64) float64    { return a + b }
func (p *Degree) IsActive(s model.State) bool { return s.Delta != 0 }
func (p *Degree) Init(v model.VertexID, g model.GraphInfo) (model.State, bool) {
	return model.State{Value: 0, Delta: float64(g.OutDegree(v))}, true
}
func (p *Degree) Apply(_ model.VertexID, s *model.State, _ int) (float64, bool) {
	s.Value += s.Delta
	s.Delta = 0
	return 0, false
}
func (p *Degree) Contribution(seed float64, _ float32) float64 { return seed }

// Result implements model.Resulter: members of the k-core report their core
// degree, everyone else (including edge-less vertices that never enter any
// k≥1 core) reports -1.
func (p *KCore) Result(_ model.VertexID, s model.State) float64 {
	if s.Value >= float64(p.K) {
		return s.Value
	}
	return -1
}
