package algo

import (
	"math"

	"cgraph/model"
)

// HITS computes hub and authority scores (Kleinberg's
// Hyperlink-Induced Topic Search) as a phased program — the second
// multi-phase instance after SCC, exercising the engine's direction
// switching in the opposite pattern:
//
//   - authority phase (out-edges): every vertex scatters its hub score to
//     its successors; the accumulated sums become the authority scores.
//   - hub phase (in-edges): every vertex scatters its authority score to
//     its predecessors; the accumulated sums become the hub scores.
//
// Each phase is exactly one scatter sweep (IsActive always reports false,
// so the accumulated deltas wait at the masters for NextPhase to collect,
// L1-normalize and re-seed). After Rounds hub/authority alternations the
// scores converge to the principal singular vectors of the adjacency
// matrix. Results report authority scores; HubScores exposes the hubs.
// One instance per job (job-private bookkeeping).
type HITS struct {
	// Rounds is the number of hub→authority→hub alternations (default 20).
	Rounds int

	phase int // 0 = scatter hubs (Out), 1 = scatter authorities (In)
	round int
	hub   []float64
	auth  []float64
	done  bool
}

// NewHITS returns a HITS program with 20 rounds.
func NewHITS() *HITS { return &HITS{Rounds: 20} }

func (p *HITS) Name() string { return "HITS" }

func (p *HITS) Direction() model.Direction {
	if p.phase == 0 {
		return model.Out
	}
	return model.In
}

func (p *HITS) Identity() float64        { return 0 }
func (p *HITS) Acc(a, b float64) float64 { return a + b }

// IsActive is always false: a phase is a single sweep; accumulated deltas
// are harvested by NextPhase instead of re-activating vertices.
func (p *HITS) IsActive(model.State) bool { return false }

func (p *HITS) Init(v model.VertexID, g model.GraphInfo) (model.State, bool) {
	if p.hub == nil {
		n := g.NumVertices()
		p.hub = make([]float64, n)
		p.auth = make([]float64, n)
		for i := range p.hub {
			p.hub[i] = 1 / float64(n)
		}
	}
	return model.State{Value: p.hub[v], Delta: 0}, true
}

func (p *HITS) Apply(_ model.VertexID, s *model.State, deg int) (float64, bool) {
	s.Delta = 0
	if deg == 0 || s.Value == 0 {
		return 0, false
	}
	return s.Value, true
}

func (p *HITS) Contribution(seed float64, _ float32) float64 { return seed }

// NextPhase harvests the sums accumulated by the sweep, normalizes them,
// and seeds the opposite sweep; after Rounds alternations it finishes.
func (p *HITS) NextPhase(view model.StateView) bool {
	n := view.NumVertices()
	rounds := p.Rounds
	if rounds <= 0 {
		rounds = 20
	}
	if p.phase == 0 {
		// Hub sweep done: deltas are raw authority scores.
		sum := 0.0
		for i := 0; i < n; i++ {
			d := view.Get(model.VertexID(i)).Delta
			p.auth[i] = d
			sum += math.Abs(d)
		}
		if sum == 0 {
			p.done = true
			return false
		}
		for i := 0; i < n; i++ {
			p.auth[i] /= sum
			view.Set(model.VertexID(i), model.State{Value: p.auth[i]}, p.auth[i] != 0)
		}
		p.phase = 1
		return true
	}
	// Authority sweep done: deltas are raw hub scores.
	sum := 0.0
	for i := 0; i < n; i++ {
		d := view.Get(model.VertexID(i)).Delta
		p.hub[i] = d
		sum += math.Abs(d)
	}
	p.round++
	if sum == 0 || p.round >= rounds {
		p.done = true
		return false
	}
	for i := 0; i < n; i++ {
		p.hub[i] /= sum
		view.Set(model.VertexID(i), model.State{Value: p.hub[i]}, p.hub[i] != 0)
	}
	p.phase = 0
	return true
}

// Result implements model.Resulter: the authority score of v.
func (p *HITS) Result(v model.VertexID, _ model.State) float64 {
	if p.auth == nil {
		return 0
	}
	return p.auth[v]
}

// HubScores returns the final hub vector (valid after the job completes).
func (p *HITS) HubScores() []float64 {
	out := append([]float64(nil), p.hub...)
	sum := 0.0
	for _, h := range out {
		sum += math.Abs(h)
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out
}

// Katz computes Katz centrality katz(v) = Σ_k α^k paths_k(→v), i.e. the
// fixed point of katz = β + α·Σ_in katz(u) — delta-accumulative exactly
// like PageRank but with uniform attenuation instead of degree division.
// Alpha must stay below 1/λmax of the adjacency matrix to converge; the
// default is conservative for the bundled power-law generators.
type Katz struct {
	Alpha   float64
	Beta    float64
	Epsilon float64
}

// NewKatz returns Katz centrality with α=0.005, β=1, ε=1e-6.
func NewKatz() *Katz { return &Katz{Alpha: 0.005, Beta: 1, Epsilon: 1e-6} }

func (p *Katz) Name() string               { return "Katz" }
func (p *Katz) Direction() model.Direction { return model.Out }
func (p *Katz) Identity() float64          { return 0 }
func (p *Katz) Acc(a, b float64) float64   { return a + b }
func (p *Katz) IsActive(s model.State) bool {
	return math.Abs(s.Delta) > p.Epsilon
}
func (p *Katz) Init(model.VertexID, model.GraphInfo) (model.State, bool) {
	return model.State{Value: 0, Delta: p.Beta}, true
}
func (p *Katz) Apply(_ model.VertexID, s *model.State, deg int) (float64, bool) {
	d := s.Delta
	s.Value += d
	s.Delta = 0
	if deg == 0 {
		return 0, false
	}
	return p.Alpha * d, true
}
func (p *Katz) Contribution(seed float64, _ float32) float64 { return seed }
