package algo

import (
	"math"

	"cgraph/model"
)

// SCC finds strongly connected components with the iterative
// forward-backward label-peeling scheme of Hong et al. (the paper's SCC
// benchmark [16]) expressed in the LTP programming model:
//
//   - Forward phase (out-edges): max-vertex-ID propagation over the
//     unassigned subgraph colours every vertex with the largest ID that
//     reaches it.
//   - Backward phase (in-edges): each colour's root (colour == own ID)
//     floods a confirmation flag backwards through same-coloured vertices;
//     every vertex reached belongs to the root's SCC and is assigned.
//   - Peel and repeat on the remaining unassigned vertices. Each round
//     assigns at least the root of the largest unassigned ID, so the
//     process terminates.
//
// A flag masked by a larger colour (Acc is max) merely delays that vertex's
// assignment to a later round, never mis-assigns it. The assignment table is
// job-private bookkeeping: use one SCC instance per job.
type SCC struct {
	phase    int // 0 = forward, 1 = backward
	assigned []float64
	colors   []float64
}

// NewSCC returns a fresh SCC program instance.
func NewSCC() *SCC { return &SCC{} }

const (
	sccUnassigned = -1
	// sccDone marks a replica that has already forwarded the confirmation
	// flag, so echoes bouncing around the cycle are filtered out.
	sccDone = -2
)

func (p *SCC) Name() string { return "SCC" }

func (p *SCC) Direction() model.Direction {
	if p.phase == 0 {
		return model.Out
	}
	return model.In
}

func (p *SCC) Identity() float64        { return math.Inf(-1) }
func (p *SCC) Acc(a, b float64) float64 { return math.Max(a, b) }

func (p *SCC) IsActive(s model.State) bool {
	if p.phase == 0 {
		return s.Delta > s.Value
	}
	// Backward: a pending flag activates only when it matches the
	// vertex's own colour (held in Value).
	return !math.IsInf(s.Delta, -1) && s.Delta == s.Value
}

func (p *SCC) Init(v model.VertexID, g model.GraphInfo) (model.State, bool) {
	if p.assigned == nil {
		n := g.NumVertices()
		p.assigned = make([]float64, n)
		p.colors = make([]float64, n)
		for i := range p.assigned {
			p.assigned[i] = sccUnassigned
		}
	}
	// Forward round 1: every vertex floods its own ID.
	return model.State{Value: math.Inf(-1), Delta: float64(v)}, true
}

func (p *SCC) Apply(v model.VertexID, s *model.State, _ int) (float64, bool) {
	d := s.Delta
	s.Delta = math.Inf(-1)
	if p.phase == 0 {
		if p.assigned[v] != sccUnassigned {
			return 0, false
		}
		if d > s.Value {
			s.Value = d
			return s.Value, true
		}
		return 0, false
	}
	if p.assigned[v] != sccUnassigned && s.Value == sccDone {
		return 0, false
	}
	// Backward: a matching flag assigns the vertex and propagates. The
	// latch on Value makes every replica forward the flag exactly once —
	// each replica owns a disjoint slice of the vertex's in-edges, so all
	// of them must scatter for the flood to cover the component.
	if d == p.colors[v] && s.Value == d {
		p.assigned[v] = d
		s.Value = sccDone
		return d, true
	}
	return 0, false
}

func (p *SCC) Contribution(seed float64, _ float32) float64 { return seed }

// NextPhase alternates forward colouring and backward confirmation until
// every vertex with edges is assigned, then writes assignments back into the
// states.
func (p *SCC) NextPhase(view model.StateView) bool {
	n := view.NumVertices()
	if DebugHook != nil {
		defer DebugHook(p.phase, p.colors, p.assigned)
	}
	if p.phase == 0 {
		// Forward converged: freeze colours, seed backward roots.
		progress := false
		for i := 0; i < n; i++ {
			v := model.VertexID(i)
			if p.assigned[i] != sccUnassigned {
				continue
			}
			c := view.Get(v).Value
			if math.IsInf(c, -1) {
				// Isolated replica-less vertex: its own component.
				p.assigned[i] = float64(i)
				continue
			}
			p.colors[i] = c
			if c == float64(i) {
				// Root: flag itself.
				view.Set(v, model.State{Value: c, Delta: c}, true)
				progress = true
			} else {
				view.Set(v, model.State{Value: c, Delta: math.Inf(-1)}, false)
			}
		}
		if !progress {
			// Nothing left to confirm: everything is assigned.
			return false
		}
		p.phase = 1
		return true
	}
	// Backward converged: peel, restart forward over leftovers.
	p.phase = 0
	remaining := false
	for i := 0; i < n; i++ {
		v := model.VertexID(i)
		if p.assigned[i] != sccUnassigned {
			view.Set(v, model.State{Value: p.assigned[i], Delta: math.Inf(-1)}, false)
			continue
		}
		remaining = true
		view.Set(v, model.State{Value: math.Inf(-1), Delta: float64(i)}, true)
	}
	return remaining
}

// Accept implements model.Filterer: during the backward phase only a flag
// matching the receiver's own colour (held in Value) may fold into Delta,
// so a larger colour's flag can never mask the matching one.
func (p *SCC) Accept(s model.State, contribution float64) bool {
	if p.phase == 0 {
		return true
	}
	return contribution == s.Value // latched (sccDone) replicas reject echoes
}

// Result implements model.Resulter: the component label of v.
func (p *SCC) Result(v model.VertexID, _ model.State) float64 {
	if p.assigned == nil || p.assigned[v] == sccUnassigned {
		return float64(v)
	}
	return p.assigned[v]
}

// DebugUnassigned reports how many vertices remain unassigned (testing aid).
func (p *SCC) DebugUnassigned() int {
	n := 0
	for _, a := range p.assigned {
		if a == sccUnassigned {
			n++
		}
	}
	return n
}

// DebugHook, when set, is invoked at every phase transition with the phase
// just completed and the colour/assignment tables (testing aid).
var DebugHook func(completedPhase int, colors, assigned []float64)
