// Package model defines the vertex-centric programming model shared by the
// CGraph engine, the baseline engines and the bundled algorithms.
//
// It is the Go rendering of the paper's three-function interface (§3.4):
// IsNotConvergent() becomes IsActive, Acc() keeps its name, and Compute() is
// split into Apply (merge the accumulated delta into the vertex value and
// produce a scatter seed) plus Contribution (the delta sent along one edge).
// Splitting Compute lets the engine iterate a partition's edges itself, which
// is what makes the shared, load-once-trigger-many execution of the LTP model
// possible: the engine owns the traversal, the program owns the arithmetic.
package model

import "math"

// VertexID identifies a vertex in the global graph.
type VertexID uint32

// NoVertex is the sentinel for "no vertex".
const NoVertex = VertexID(math.MaxUint32)

// Edge is one directed, weighted edge of the input graph.
type Edge struct {
	Src, Dst VertexID
	Weight   float32
}

// HoleEdge returns the tombstone written into an edge slot freed by a
// removal. Holes keep later slots' chunk assignment stable (so a remove
// does not recut every chunk after it) and are skipped when the graph is
// built; a later add refills the slot in place.
func HoleEdge() Edge {
	return Edge{Src: NoVertex, Dst: NoVertex, Weight: float32(math.NaN())}
}

// IsHole reports whether the edge is a freed-slot tombstone.
func (e Edge) IsHole() bool {
	return e.Src == NoVertex && e.Dst == NoVertex
}

// Direction selects which incident edges a program traverses when scattering.
type Direction uint8

const (
	// Out scatters along out-edges (PageRank, SSSP, BFS).
	Out Direction = iota
	// In scatters along in-edges (backward phases, e.g. SCC confirmation).
	In
	// Both scatters along all incident edges (WCC, k-core).
	Both
)

func (d Direction) String() string {
	switch d {
	case Out:
		return "out"
	case In:
		return "in"
	default:
		return "both"
	}
}

// State is the per-vertex, per-job state held in a job's private table: the
// converged value so far plus the delta accumulated from neighbours since the
// vertex was last applied (the paper's vh.value and vh.Δvalue).
type State struct {
	Value float64
	Delta float64
}

// GraphInfo exposes the global graph facts a program may consult at
// initialization time.
type GraphInfo interface {
	NumVertices() int
	OutDegree(v VertexID) int
	InDegree(v VertexID) int
}

// Program is one iterative graph algorithm. A program must be stateless with
// respect to vertices except through State and its own job-private
// bookkeeping (e.g. SCC's assignment table); engines may invoke Apply and
// Contribution from multiple goroutines for different vertices concurrently.
type Program interface {
	// Name identifies the algorithm in reports.
	Name() string

	// Direction reports which incident edges Scatter uses. Engines re-read
	// it at every phase boundary, so phased programs may change it.
	Direction() Direction

	// Identity is the neutral element of Acc (0 for sum, +Inf for min,
	// -Inf for max). A vertex whose Delta equals Identity has received
	// nothing.
	Identity() float64

	// Acc folds a new contribution into an accumulated delta. It must be
	// commutative and associative.
	Acc(acc, contribution float64) float64

	// IsActive is the paper's IsNotConvergent: given a state that has just
	// accumulated deltas, does the vertex need processing next iteration?
	IsActive(s State) bool

	// Init returns the initial state of v and whether it starts active.
	Init(v VertexID, g GraphInfo) (s State, active bool)

	// Apply consumes s.Delta into s.Value and returns the scatter seed for
	// Contribution. Apply must always reset s.Delta to Identity, even when
	// it returns scatter=false. deg is v's degree in Direction().
	Apply(v VertexID, s *State, deg int) (seed float64, scatter bool)

	// Contribution returns the delta for a neighbour reached over an edge
	// of weight w, given the seed from Apply.
	Contribution(seed float64, w float32) float64
}

// StateView gives phased programs whole-graph access to their private state
// between phases. Set writes the state to every replica of v and marks the
// vertex active or inactive for the next phase.
type StateView interface {
	NumVertices() int
	Get(v VertexID) State
	Set(v VertexID, s State, active bool)
}

// Phased is implemented by programs with multiple propagation phases (e.g.
// SCC's alternating forward/backward sweeps). When a job has no active
// vertices left, the engine calls NextPhase; returning true restarts
// iteration with the (possibly rewritten) states, returning false completes
// the job. Engines re-read Direction() after NextPhase.
type Phased interface {
	Program
	NextPhase(view StateView) bool
}

// Inf is a convenience alias used by min/max-propagation programs.
var Inf = math.Inf(1)

// Resulter is an optional Program extension overriding per-vertex result
// extraction: programs whose answer lives in job-private bookkeeping rather
// than the propagation state (e.g. SCC's assignment table) implement it.
type Resulter interface {
	Result(v VertexID, s State) float64
}

// Filterer is an optional Program extension that rejects a contribution
// based on the receiver's current state before Acc folds it. Colour-
// respecting flood phases need it: SCC's backward sweep must not let a
// larger colour's flag mask the matching one inside a single Acc fold,
// which would split true components.
type Filterer interface {
	Accept(s State, contribution float64) bool
}
