package model

import (
	"math"
	"testing"
)

func TestDirectionString(t *testing.T) {
	cases := map[Direction]string{Out: "out", In: "in", Both: "both", Direction(9): "both"}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("Direction(%d).String() = %q, want %q", d, got, want)
		}
	}
}

func TestSentinels(t *testing.T) {
	if NoVertex != VertexID(math.MaxUint32) {
		t.Fatalf("NoVertex = %d, want MaxUint32", NoVertex)
	}
	if !math.IsInf(Inf, 1) {
		t.Fatal("Inf must be +infinity")
	}
}

// counterProgram is a minimal Program used to exercise the interface
// contract: sum accumulator, one-shot activity.
type counterProgram struct{}

func (counterProgram) Name() string             { return "Counter" }
func (counterProgram) Direction() Direction     { return Out }
func (counterProgram) Identity() float64        { return 0 }
func (counterProgram) Acc(a, c float64) float64 { return a + c }
func (counterProgram) IsActive(s State) bool    { return s.Delta != 0 }
func (counterProgram) Init(v VertexID, g GraphInfo) (State, bool) {
	return State{}, v == 0
}
func (counterProgram) Apply(v VertexID, s *State, deg int) (float64, bool) {
	s.Value += s.Delta
	s.Delta = 0
	return 1, deg > 0
}
func (counterProgram) Contribution(seed float64, w float32) float64 { return seed * float64(w) }

func TestProgramContract(t *testing.T) {
	var p Program = counterProgram{}
	if p.Identity() != 0 {
		t.Fatal("identity")
	}
	if got := p.Acc(p.Acc(p.Identity(), 2), 3); got != 5 {
		t.Fatalf("Acc fold = %v, want 5", got)
	}
	s := State{Value: 1, Delta: 4}
	seed, scatter := p.Apply(0, &s, 2)
	if !scatter || seed != 1 || s.Value != 5 || s.Delta != p.Identity() {
		t.Fatalf("Apply contract violated: seed=%v scatter=%v state=%+v", seed, scatter, s)
	}
	if p.IsActive(s) {
		t.Fatal("state with identity delta must be inactive")
	}
	if got := p.Contribution(2, 1.5); got != 3 {
		t.Fatalf("Contribution = %v, want 3", got)
	}
	// Optional extensions are absent on the plain program.
	if _, ok := p.(Phased); ok {
		t.Fatal("counterProgram must not be Phased")
	}
	if _, ok := p.(Resulter); ok {
		t.Fatal("counterProgram must not be Resulter")
	}
	if _, ok := p.(Filterer); ok {
		t.Fatal("counterProgram must not be Filterer")
	}
}
