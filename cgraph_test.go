package cgraph

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cgraph/algo"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/refimpl"
)

func TestQuickstartFlow(t *testing.T) {
	edges := gen.RMAT(51, 300, 6000, 0.57, 0.19, 0.19)
	sys := NewSystem(WithWorkers(4))
	if err := sys.LoadEdges(0, edges); err != nil {
		t.Fatal(err)
	}
	pr, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sys.Submit(algo.NewSSSP(0))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 2 || rep.SimulatedMakespanUS <= 0 {
		t.Fatalf("report malformed: %+v", rep)
	}

	g := graph.Build(0, edges)
	wantPR := refimpl.PageRank(g, 0.85, 1e-12, 3000)
	gotPR, err := pr.Results()
	if err != nil {
		t.Fatal(err)
	}
	for v := range gotPR {
		if math.Abs(gotPR[v]-wantPR[v]) > 1e-5 {
			t.Fatalf("pagerank vertex %d: got %v want %v", v, gotPR[v], wantPR[v])
		}
	}
	wantSS := refimpl.SSSP(g, 0)
	gotSS, _ := ss.Results()
	for v := range gotSS {
		if gotSS[v] != wantSS[v] && !(math.IsInf(gotSS[v], 1) && math.IsInf(wantSS[v], 1)) {
			t.Fatalf("sssp vertex %d wrong", v)
		}
	}
}

func TestSystemErrors(t *testing.T) {
	sys := NewSystem()
	if _, err := sys.Submit(algo.NewBFS(0)); err == nil {
		t.Fatal("submit before load must fail")
	}
	if _, err := sys.Run(); err == nil {
		t.Fatal("run before submit must fail")
	}
	if err := sys.LoadEdges(0, nil); err == nil {
		t.Fatal("empty edge list must fail")
	}
	edges := gen.ER(1, 50, 400)
	if err := sys.LoadEdges(0, edges); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadEdges(0, edges); err == nil {
		t.Fatal("double load must fail")
	}
	// Snapshots need plain partitioning.
	if err := sys.AddSnapshot(edges, 5); err == nil {
		t.Fatal("snapshot on core-subgraph system must fail")
	}
}

func TestSnapshotWorkflow(t *testing.T) {
	edges := gen.ER(7, 120, 1500)
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false))
	if err := sys.LoadEdges(0, edges); err != nil {
		t.Fatal(err)
	}
	mut, _ := gen.Mutate(edges, 0.02, 120, 9)
	if err := sys.AddSnapshot(mut, 10); err != nil {
		t.Fatal(err)
	}
	oldJob, err := sys.Submit(algo.NewBFS(0), AtTimestamp(0))
	if err != nil {
		t.Fatal(err)
	}
	newJob, err := sys.Submit(algo.NewBFS(0), AtTimestamp(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	wantOld := refimpl.BFS(graph.Build(120, edges), 0)
	wantNew := refimpl.BFS(graph.Build(120, mut), 0)
	gotOld, _ := oldJob.Results()
	gotNew, _ := newJob.Results()
	for v := range gotOld {
		if gotOld[v] != wantOld[v] && !(math.IsInf(gotOld[v], 1) && math.IsInf(wantOld[v], 1)) {
			t.Fatalf("old snapshot vertex %d wrong", v)
		}
		if gotNew[v] != wantNew[v] && !(math.IsInf(gotNew[v], 1) && math.IsInf(wantNew[v], 1)) {
			t.Fatalf("new snapshot vertex %d wrong", v)
		}
	}
}

func TestLoadEdgeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.tsv")
	edges := gen.ER(3, 60, 500)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.WriteEdges(f, edges); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sys := NewSystem(WithWorkers(2))
	if err := sys.LoadEdgeFile(path); err != nil {
		t.Fatal(err)
	}
	j, err := sys.Submit(algo.NewDegree())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := j.Results()
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(0, edges)
	for v := range res {
		if res[v] != float64(g.OutDegree(VertexID(v))) {
			t.Fatalf("degree vertex %d wrong", v)
		}
	}
	if err := NewSystem().LoadEdgeFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestCacheSimulationReportsMetrics(t *testing.T) {
	edges := gen.RMAT(52, 200, 4000, 0.57, 0.19, 0.19)
	sys := NewSystem(WithWorkers(4), WithCacheSimulation(64<<10, 1<<20))
	if err := sys.LoadEdges(0, edges); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Submit(algo.NewWCC()); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesIntoCache == 0 || rep.CacheMissRate <= 0 {
		t.Fatalf("cache metrics empty: %+v", rep)
	}
	if rep.Jobs[0].Name != "WCC" || rep.Jobs[0].Iterations == 0 || rep.Jobs[0].EdgesProcessed == 0 {
		t.Fatalf("job report empty: %+v", rep.Jobs[0])
	}
}

func TestRerunAfterMoreSubmissions(t *testing.T) {
	edges := gen.ER(8, 100, 900)
	sys := NewSystem(WithWorkers(2), WithScheduler(StaticScheduler), WithoutStragglerSplitting(), WithPartitions(5))
	if err := sys.LoadEdges(0, edges); err != nil {
		t.Fatal(err)
	}
	j1, _ := sys.Submit(algo.NewBFS(0))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	j2, _ := sys.Submit(algo.NewBFS(1))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Results(); err != nil {
		t.Fatal(err)
	}
	res, err := j2.Results()
	if err != nil {
		t.Fatal(err)
	}
	want := refimpl.BFS(graph.Build(0, edges), 1)
	for v := range res {
		if res[v] != want[v] && !(math.IsInf(res[v], 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("second-run bfs vertex %d wrong", v)
		}
	}
}

func TestServeModeLifecycle(t *testing.T) {
	edges := gen.RMAT(53, 250, 4000, 0.57, 0.19, 0.19)
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false))
	if err := sys.LoadEdges(250, edges); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- sys.Serve(context.Background()) }()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	pr, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Wait(ctx); err != nil {
		t.Fatalf("pagerank wait: %v", err)
	}
	if pr.State() != JobDone || pr.Err() != nil || pr.Metrics() == nil {
		t.Fatalf("done handle wrong: state=%v err=%v", pr.State(), pr.Err())
	}
	res, err := pr.Results()
	if err != nil {
		t.Fatal(err)
	}
	want := refimpl.PageRank(graph.Build(250, edges), 0.85, 1e-12, 3000)
	for v := range res {
		if math.Abs(res[v]-want[v]) > 1e-5 {
			t.Fatalf("pagerank vertex %d: got %v want %v", v, res[v], want[v])
		}
	}

	// Cancellation via the handle: epsilon 0 keeps PageRank iterating far
	// longer than the cancel takes to land.
	long, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := long.Cancel(); err != nil {
		t.Fatal(err)
	}
	if err := long.Wait(ctx); !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled wait = %v, want ErrCancelled", err)
	}
	if long.State() != JobCancelled {
		t.Fatalf("cancelled state = %v", long.State())
	}

	// Serving twice fails; batch Run is excluded while serving.
	if err := sys.Serve(context.Background()); err == nil {
		t.Fatal("second Serve must fail")
	}

	if err := sys.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-ctx.Done():
		t.Fatal("serve did not exit after shutdown")
	}
	// Shutdown when not serving is a no-op.
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Done < 1 || st.Cancelled < 1 || st.Rounds == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}
