package cgraph

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cgraph/algo"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/refimpl"
)

func TestQuickstartFlow(t *testing.T) {
	edges := gen.RMAT(51, 300, 6000, 0.57, 0.19, 0.19)
	sys := NewSystem(WithWorkers(4))
	if err := sys.LoadEdges(0, edges); err != nil {
		t.Fatal(err)
	}
	pr, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sys.Submit(algo.NewSSSP(0))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 2 || rep.SimulatedMakespanUS <= 0 {
		t.Fatalf("report malformed: %+v", rep)
	}

	g := graph.Build(0, edges)
	wantPR := refimpl.PageRank(g, 0.85, 1e-12, 3000)
	gotPR, err := pr.Results()
	if err != nil {
		t.Fatal(err)
	}
	for v := range gotPR {
		if math.Abs(gotPR[v]-wantPR[v]) > 1e-5 {
			t.Fatalf("pagerank vertex %d: got %v want %v", v, gotPR[v], wantPR[v])
		}
	}
	wantSS := refimpl.SSSP(g, 0)
	gotSS, _ := ss.Results()
	for v := range gotSS {
		if gotSS[v] != wantSS[v] && !(math.IsInf(gotSS[v], 1) && math.IsInf(wantSS[v], 1)) {
			t.Fatalf("sssp vertex %d wrong", v)
		}
	}
}

func TestSystemErrors(t *testing.T) {
	sys := NewSystem()
	if _, err := sys.Submit(algo.NewBFS(0)); err == nil {
		t.Fatal("submit before load must fail")
	}
	if _, err := sys.Run(); err == nil {
		t.Fatal("run before submit must fail")
	}
	if err := sys.LoadEdges(0, nil); err == nil {
		t.Fatal("empty edge list must fail")
	}
	edges := gen.ER(1, 50, 400)
	if err := sys.LoadEdges(0, edges); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadEdges(0, edges); err == nil {
		t.Fatal("double load must fail")
	}
	// Snapshots need plain partitioning.
	if err := sys.AddSnapshot(edges, 5); err == nil {
		t.Fatal("snapshot on core-subgraph system must fail")
	}
}

func TestSnapshotWorkflow(t *testing.T) {
	edges := gen.ER(7, 120, 1500)
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false))
	if err := sys.LoadEdges(0, edges); err != nil {
		t.Fatal(err)
	}
	mut, _ := gen.Mutate(edges, 0.02, 120, 9)
	if err := sys.AddSnapshot(mut, 10); err != nil {
		t.Fatal(err)
	}
	oldJob, err := sys.Submit(algo.NewBFS(0), AtTimestamp(0))
	if err != nil {
		t.Fatal(err)
	}
	newJob, err := sys.Submit(algo.NewBFS(0), AtTimestamp(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	wantOld := refimpl.BFS(graph.Build(120, edges), 0)
	wantNew := refimpl.BFS(graph.Build(120, mut), 0)
	gotOld, _ := oldJob.Results()
	gotNew, _ := newJob.Results()
	for v := range gotOld {
		if gotOld[v] != wantOld[v] && !(math.IsInf(gotOld[v], 1) && math.IsInf(wantOld[v], 1)) {
			t.Fatalf("old snapshot vertex %d wrong", v)
		}
		if gotNew[v] != wantNew[v] && !(math.IsInf(gotNew[v], 1) && math.IsInf(wantNew[v], 1)) {
			t.Fatalf("new snapshot vertex %d wrong", v)
		}
	}
}

// TestDeltaSnapshotParity is the correctness anchor of the streaming path:
// a job bound to a snapshot built from deltas must compute exactly what it
// would against the same version ingested as a full list via AddSnapshot,
// and the delta-built overlay must share at least as many partitions.
func TestDeltaSnapshotParity(t *testing.T) {
	const n = 150
	base := gen.ER(7, n, 2000)
	mut, slots := gen.MutateClustered(base, 0.02, n, 9, 16)

	full := NewSystem(WithWorkers(2), WithCoreSubgraph(false), WithPartitions(8))
	if err := full.LoadEdges(n, base); err != nil {
		t.Fatal(err)
	}
	if err := full.AddSnapshot(mut, 10); err != nil {
		t.Fatal(err)
	}

	delta := NewSystem(WithWorkers(2), WithCoreSubgraph(false), WithPartitions(8))
	if err := delta.LoadEdges(n, base); err != nil {
		t.Fatal(err)
	}
	d := Delta{Timestamp: 10, Flush: true}
	for _, s := range slots {
		d.Mutations = append(d.Mutations, Mutation{Slot: s, Edge: mut[s]})
	}
	ack, err := delta.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Flushed || ack.Timestamp != 10 {
		t.Fatalf("ack = %+v, want flush at ts 10", ack)
	}

	// The delta overlay shares at least as many partitions as the
	// full-list path (both rebuild exactly the touched chunks).
	fullShared := full.store.SharedParts(0, 1)
	deltaShared := delta.store.SharedParts(0, 1)
	if deltaShared < fullShared || fullShared <= 0 {
		t.Fatalf("delta path shares %d partitions, full path %d", deltaShared, fullShared)
	}
	ist := delta.IngestStats()
	if ist.PartsShared != int64(deltaShared) || ist.SnapshotsBuilt != 1 || ist.SlotsApplied != int64(len(slots)) {
		t.Fatalf("ingest stats inconsistent: %+v (shared %d, slots %d)", ist, deltaShared, len(slots))
	}

	for _, sys := range []*System{full, delta} {
		if _, err := sys.Submit(algo.NewPageRank(), AtTimestamp(10)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := full.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := delta.Run(); err != nil {
		t.Fatal(err)
	}
	want, _ := full.jobs[0].Results()
	got, _ := delta.jobs[0].Results()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: delta-built %v != full-list %v", v, got[v], want[v])
		}
	}
}

// TestDeltaValidation covers the rejection paths of ApplyDelta.
func TestDeltaValidation(t *testing.T) {
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false))
	if _, err := sys.ApplyDelta(Delta{}); err == nil {
		t.Fatal("delta before a graph accepted")
	}
	edges := gen.ER(7, 50, 500)
	if err := sys.LoadEdges(50, edges); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ApplyDelta(Delta{Mutations: []Mutation{{Slot: 500, Edge: Edge{Src: 1, Dst: 2}}}}); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if _, err := sys.ApplyDelta(Delta{Mutations: []Mutation{{Op: MutationOp(7), Slot: 0, Edge: Edge{Src: 1, Dst: 2}}}}); err == nil {
		t.Fatal("unknown op accepted")
	}
	// A no-op rewrite flushes without building a snapshot.
	ack, err := sys.ApplyDelta(Delta{Mutations: []Mutation{{Slot: 0, Edge: edges[0]}}, Flush: true})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Flushed || sys.IngestStats().SnapshotsBuilt != 0 {
		t.Fatalf("no-op rewrite built a snapshot: %+v", ack)
	}
	// Core-subgraph partitioning (slot-unstable chunks) rejects delta
	// ingestion up front; the hub-heavy RMAT graph guarantees core
	// partitions actually form.
	coreEdges := gen.RMAT(5, 200, 4000, 0.57, 0.19, 0.19)
	coreSys := NewSystem(WithWorkers(2))
	if err := coreSys.LoadEdges(200, coreEdges); err != nil {
		t.Fatal(err)
	}
	if _, err := coreSys.ApplyDelta(Delta{Mutations: []Mutation{{Slot: 0, Edge: Edge{Src: 1, Dst: 2}}}}); err == nil {
		t.Fatal("core-subgraph system accepted a delta")
	}
}

// TestSnapshotGCSoak drives continuous deltas through a serving system
// while jobs bind to the rolling latest snapshot and retire; the retained
// series must stay bounded, and a job bound to an old retained version
// must keep its snapshot alive until it retires.
func TestSnapshotGCSoak(t *testing.T) {
	const n = 120
	edges := gen.ER(7, n, 1500)
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false), WithRetainSnapshots(3))
	if err := sys.LoadEdges(n, edges); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- sys.Serve(ctx) }()

	// mutateDelta derives a small delta against the system's current edge
	// list (read under the lock: the materializer rewrites it).
	mutateDelta := func(seed int64) Delta {
		sys.mu.Lock()
		cur := append([]Edge(nil), sys.edges...)
		sys.mu.Unlock()
		mut, slots := gen.Mutate(cur, 0.01, n, seed)
		d := Delta{Flush: true}
		for _, s := range slots {
			d.Mutations = append(d.Mutations, Mutation{Slot: s, Edge: mut[s]})
		}
		return d
	}

	for i := 0; i < 12; i++ {
		if _, err := sys.ApplyDelta(mutateDelta(int64(100 + i))); err != nil {
			t.Fatal(err)
		}
		j, err := sys.Submit(algo.NewBFS(0))
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		ist := sys.IngestStats()
		if ist.SnapshotsLive > 4 {
			t.Fatalf("iteration %d: %d live snapshots exceed the bound", i, ist.SnapshotsLive)
		}
	}
	ist := sys.IngestStats()
	if ist.SnapshotsBuilt != 12 || ist.SnapshotsEvicted < 8 {
		t.Fatalf("soak stats: %+v", ist)
	}
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}

	// With the round loop parked, a job bound to the oldest retained
	// snapshot stays pending and pins it: six more ingested versions must
	// not evict it out from under the job.
	oldest := sys.store.Snapshots()[0]
	pinned, err := sys.Submit(algo.NewPageRank(), AtTimestamp(oldest.Timestamp))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := sys.ApplyDelta(mutateDelta(int64(200 + i))); err != nil {
			t.Fatal(err)
		}
	}
	if snap, ok := sys.store.At(oldest.Seq); !ok || snap.PG != oldest.PG {
		t.Fatal("snapshot with a bound job was evicted")
	}
	if live := sys.IngestStats().SnapshotsLive; live <= 3 {
		t.Fatalf("pinned series should exceed the cap while the job lives, got %d", live)
	}
	// The job retires; its reference releases and GC shrinks the series
	// back to the cap.
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if err := pinned.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if live := sys.IngestStats().SnapshotsLive; live != 3 {
		t.Fatalf("live snapshots after the pinned job retired = %d, want 3", live)
	}
}

func TestLoadEdgeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.tsv")
	edges := gen.ER(3, 60, 500)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.WriteEdges(f, edges); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sys := NewSystem(WithWorkers(2))
	if err := sys.LoadEdgeFile(path); err != nil {
		t.Fatal(err)
	}
	j, err := sys.Submit(algo.NewDegree())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := j.Results()
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(0, edges)
	for v := range res {
		if res[v] != float64(g.OutDegree(VertexID(v))) {
			t.Fatalf("degree vertex %d wrong", v)
		}
	}
	if err := NewSystem().LoadEdgeFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestCacheSimulationReportsMetrics(t *testing.T) {
	edges := gen.RMAT(52, 200, 4000, 0.57, 0.19, 0.19)
	sys := NewSystem(WithWorkers(4), WithCacheSimulation(64<<10, 1<<20))
	if err := sys.LoadEdges(0, edges); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Submit(algo.NewWCC()); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesIntoCache == 0 || rep.CacheMissRate <= 0 {
		t.Fatalf("cache metrics empty: %+v", rep)
	}
	if rep.Jobs[0].Name != "WCC" || rep.Jobs[0].Iterations == 0 || rep.Jobs[0].EdgesProcessed == 0 {
		t.Fatalf("job report empty: %+v", rep.Jobs[0])
	}
}

func TestRerunAfterMoreSubmissions(t *testing.T) {
	edges := gen.ER(8, 100, 900)
	sys := NewSystem(WithWorkers(2), WithScheduler(StaticScheduler), WithoutStragglerSplitting(), WithPartitions(5))
	if err := sys.LoadEdges(0, edges); err != nil {
		t.Fatal(err)
	}
	j1, _ := sys.Submit(algo.NewBFS(0))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	j2, _ := sys.Submit(algo.NewBFS(1))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Results(); err != nil {
		t.Fatal(err)
	}
	res, err := j2.Results()
	if err != nil {
		t.Fatal(err)
	}
	want := refimpl.BFS(graph.Build(0, edges), 1)
	for v := range res {
		if res[v] != want[v] && !(math.IsInf(res[v], 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("second-run bfs vertex %d wrong", v)
		}
	}
}

func TestServeModeLifecycle(t *testing.T) {
	edges := gen.RMAT(53, 250, 4000, 0.57, 0.19, 0.19)
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false))
	if err := sys.LoadEdges(250, edges); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- sys.Serve(context.Background()) }()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	pr, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Wait(ctx); err != nil {
		t.Fatalf("pagerank wait: %v", err)
	}
	if pr.State() != JobDone || pr.Err() != nil || pr.Metrics() == nil {
		t.Fatalf("done handle wrong: state=%v err=%v", pr.State(), pr.Err())
	}
	res, err := pr.Results()
	if err != nil {
		t.Fatal(err)
	}
	want := refimpl.PageRank(graph.Build(250, edges), 0.85, 1e-12, 3000)
	for v := range res {
		if math.Abs(res[v]-want[v]) > 1e-5 {
			t.Fatalf("pagerank vertex %d: got %v want %v", v, res[v], want[v])
		}
	}

	// Cancellation via the handle: epsilon 0 keeps PageRank iterating far
	// longer than the cancel takes to land.
	long, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := long.Cancel(); err != nil {
		t.Fatal(err)
	}
	if err := long.Wait(ctx); !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled wait = %v, want ErrCancelled", err)
	}
	if long.State() != JobCancelled {
		t.Fatalf("cancelled state = %v", long.State())
	}

	// Serving twice fails; batch Run is excluded while serving.
	if err := sys.Serve(context.Background()); err == nil {
		t.Fatal("second Serve must fail")
	}

	if err := sys.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-ctx.Done():
		t.Fatal("serve did not exit after shutdown")
	}
	// Shutdown when not serving is a no-op.
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Done < 1 || st.Cancelled < 1 || st.Rounds == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}
