package cgraph

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cgraph/algo"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/refimpl"
)

func TestQuickstartFlow(t *testing.T) {
	edges := gen.RMAT(51, 300, 6000, 0.57, 0.19, 0.19)
	sys := NewSystem(WithWorkers(4))
	if err := sys.LoadEdges(0, edges); err != nil {
		t.Fatal(err)
	}
	pr, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sys.Submit(algo.NewSSSP(0))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 2 || rep.SimulatedMakespanUS <= 0 {
		t.Fatalf("report malformed: %+v", rep)
	}

	g := graph.Build(0, edges)
	wantPR := refimpl.PageRank(g, 0.85, 1e-12, 3000)
	gotPR, err := pr.Results()
	if err != nil {
		t.Fatal(err)
	}
	for v := range gotPR {
		if math.Abs(gotPR[v]-wantPR[v]) > 1e-5 {
			t.Fatalf("pagerank vertex %d: got %v want %v", v, gotPR[v], wantPR[v])
		}
	}
	wantSS := refimpl.SSSP(g, 0)
	gotSS, _ := ss.Results()
	for v := range gotSS {
		if gotSS[v] != wantSS[v] && !(math.IsInf(gotSS[v], 1) && math.IsInf(wantSS[v], 1)) {
			t.Fatalf("sssp vertex %d wrong", v)
		}
	}
}

func TestSystemErrors(t *testing.T) {
	sys := NewSystem()
	if _, err := sys.Submit(algo.NewBFS(0)); err == nil {
		t.Fatal("submit before load must fail")
	}
	if _, err := sys.Run(); err == nil {
		t.Fatal("run before submit must fail")
	}
	if err := sys.LoadEdges(0, nil); err == nil {
		t.Fatal("empty edge list must fail")
	}
	edges := gen.ER(1, 50, 400)
	if err := sys.LoadEdges(0, edges); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadEdges(0, edges); err == nil {
		t.Fatal("double load must fail")
	}
	// Snapshots need plain partitioning.
	if err := sys.AddSnapshot(edges, 5); err == nil {
		t.Fatal("snapshot on core-subgraph system must fail")
	}
}

func TestSnapshotWorkflow(t *testing.T) {
	edges := gen.ER(7, 120, 1500)
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false))
	if err := sys.LoadEdges(0, edges); err != nil {
		t.Fatal(err)
	}
	mut, _ := gen.Mutate(edges, 0.02, 120, 9)
	if err := sys.AddSnapshot(mut, 10); err != nil {
		t.Fatal(err)
	}
	oldJob, err := sys.Submit(algo.NewBFS(0), AtTimestamp(0))
	if err != nil {
		t.Fatal(err)
	}
	newJob, err := sys.Submit(algo.NewBFS(0), AtTimestamp(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	wantOld := refimpl.BFS(graph.Build(120, edges), 0)
	wantNew := refimpl.BFS(graph.Build(120, mut), 0)
	gotOld, _ := oldJob.Results()
	gotNew, _ := newJob.Results()
	for v := range gotOld {
		if gotOld[v] != wantOld[v] && !(math.IsInf(gotOld[v], 1) && math.IsInf(wantOld[v], 1)) {
			t.Fatalf("old snapshot vertex %d wrong", v)
		}
		if gotNew[v] != wantNew[v] && !(math.IsInf(gotNew[v], 1) && math.IsInf(wantNew[v], 1)) {
			t.Fatalf("new snapshot vertex %d wrong", v)
		}
	}
}

// TestDeltaSnapshotParity is the correctness anchor of the streaming path:
// a job bound to a snapshot built from deltas must compute exactly what it
// would against the same version ingested as a full list via AddSnapshot,
// and the delta-built overlay must share at least as many partitions.
func TestDeltaSnapshotParity(t *testing.T) {
	const n = 150
	base := gen.ER(7, n, 2000)
	mut, slots := gen.MutateClustered(base, 0.02, n, 9, 16)

	full := NewSystem(WithWorkers(2), WithCoreSubgraph(false), WithPartitions(8))
	if err := full.LoadEdges(n, base); err != nil {
		t.Fatal(err)
	}
	if err := full.AddSnapshot(mut, 10); err != nil {
		t.Fatal(err)
	}

	delta := NewSystem(WithWorkers(2), WithCoreSubgraph(false), WithPartitions(8))
	if err := delta.LoadEdges(n, base); err != nil {
		t.Fatal(err)
	}
	d := Delta{Timestamp: 10, Flush: true}
	for _, s := range slots {
		d.Mutations = append(d.Mutations, Mutation{Slot: s, Edge: mut[s]})
	}
	ack, err := delta.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Flushed || ack.Timestamp != 10 {
		t.Fatalf("ack = %+v, want flush at ts 10", ack)
	}

	// The delta overlay shares at least as many partitions as the
	// full-list path (both rebuild exactly the touched chunks).
	fullShared := full.store.SharedParts(0, 1)
	deltaShared := delta.store.SharedParts(0, 1)
	if deltaShared < fullShared || fullShared <= 0 {
		t.Fatalf("delta path shares %d partitions, full path %d", deltaShared, fullShared)
	}
	ist := delta.IngestStats()
	if ist.PartsShared != int64(deltaShared) || ist.SnapshotsBuilt != 1 || ist.SlotsApplied != int64(len(slots)) {
		t.Fatalf("ingest stats inconsistent: %+v (shared %d, slots %d)", ist, deltaShared, len(slots))
	}

	for _, sys := range []*System{full, delta} {
		if _, err := sys.Submit(algo.NewPageRank(), AtTimestamp(10)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := full.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := delta.Run(); err != nil {
		t.Fatal(err)
	}
	want, _ := full.jobs[0].Results()
	got, _ := delta.jobs[0].Results()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: delta-built %v != full-list %v", v, got[v], want[v])
		}
	}
}

// TestDeltaValidation covers the rejection paths of ApplyDelta.
func TestDeltaValidation(t *testing.T) {
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false))
	if _, err := sys.ApplyDelta(Delta{}); err == nil {
		t.Fatal("delta before a graph accepted")
	}
	edges := gen.ER(7, 50, 500)
	if err := sys.LoadEdges(50, edges); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ApplyDelta(Delta{Mutations: []Mutation{{Slot: 500, Edge: Edge{Src: 1, Dst: 2}}}}); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if _, err := sys.ApplyDelta(Delta{Mutations: []Mutation{{Op: MutationOp(7), Slot: 0, Edge: Edge{Src: 1, Dst: 2}}}}); err == nil {
		t.Fatal("unknown op accepted")
	}
	// A no-op rewrite flushes without building a snapshot.
	ack, err := sys.ApplyDelta(Delta{Mutations: []Mutation{{Slot: 0, Edge: edges[0]}}, Flush: true})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Flushed || sys.IngestStats().SnapshotsBuilt != 0 {
		t.Fatalf("no-op rewrite built a snapshot: %+v", ack)
	}
	// Core-subgraph partitioning (slot-unstable chunks) rejects delta
	// ingestion up front; the hub-heavy RMAT graph guarantees core
	// partitions actually form.
	coreEdges := gen.RMAT(5, 200, 4000, 0.57, 0.19, 0.19)
	coreSys := NewSystem(WithWorkers(2))
	if err := coreSys.LoadEdges(200, coreEdges); err != nil {
		t.Fatal(err)
	}
	if _, err := coreSys.ApplyDelta(Delta{Mutations: []Mutation{{Slot: 0, Edge: Edge{Src: 1, Dst: 2}}}}); err == nil {
		t.Fatal("core-subgraph system accepted a delta")
	}
}

// TestSnapshotGCSoak drives continuous deltas through a serving system
// while jobs bind to the rolling latest snapshot and retire; the retained
// series must stay bounded, and a job bound to an old retained version
// must keep its snapshot alive until it retires.
func TestSnapshotGCSoak(t *testing.T) {
	const n = 120
	edges := gen.ER(7, n, 1500)
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false), WithRetainSnapshots(3))
	if err := sys.LoadEdges(n, edges); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- sys.Serve(ctx) }()

	// mutateDelta derives a small delta against the system's current edge
	// list (read under the lock: the materializer rewrites it).
	mutateDelta := func(seed int64) Delta {
		sys.mu.Lock()
		cur := append([]Edge(nil), sys.edges...)
		sys.mu.Unlock()
		mut, slots := gen.Mutate(cur, 0.01, n, seed)
		d := Delta{Flush: true}
		for _, s := range slots {
			d.Mutations = append(d.Mutations, Mutation{Slot: s, Edge: mut[s]})
		}
		return d
	}

	for i := 0; i < 12; i++ {
		if _, err := sys.ApplyDelta(mutateDelta(int64(100 + i))); err != nil {
			t.Fatal(err)
		}
		j, err := sys.Submit(algo.NewBFS(0))
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		ist := sys.IngestStats()
		if ist.SnapshotsLive > 4 {
			t.Fatalf("iteration %d: %d live snapshots exceed the bound", i, ist.SnapshotsLive)
		}
	}
	ist := sys.IngestStats()
	if ist.SnapshotsBuilt != 12 || ist.SnapshotsEvicted < 8 {
		t.Fatalf("soak stats: %+v", ist)
	}
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}

	// With the round loop parked, a job bound to the oldest retained
	// snapshot stays pending and pins it: six more ingested versions must
	// not evict it out from under the job.
	oldest := sys.store.Snapshots()[0]
	pinned, err := sys.Submit(algo.NewPageRank(), AtTimestamp(oldest.Timestamp))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := sys.ApplyDelta(mutateDelta(int64(200 + i))); err != nil {
			t.Fatal(err)
		}
	}
	if snap, ok := sys.store.At(oldest.Seq); !ok || snap.PG != oldest.PG {
		t.Fatal("snapshot with a bound job was evicted")
	}
	if live := sys.IngestStats().SnapshotsLive; live <= 3 {
		t.Fatalf("pinned series should exceed the cap while the job lives, got %d", live)
	}
	// The job retires; its reference releases and GC shrinks the series
	// back to the cap.
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if err := pinned.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if live := sys.IngestStats().SnapshotsLive; live != 3 {
		t.Fatalf("live snapshots after the pinned job retired = %d, want 3", live)
	}
}

func TestLoadEdgeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.tsv")
	edges := gen.ER(3, 60, 500)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.WriteEdges(f, edges); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sys := NewSystem(WithWorkers(2))
	if err := sys.LoadEdgeFile(path); err != nil {
		t.Fatal(err)
	}
	j, err := sys.Submit(algo.NewDegree())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := j.Results()
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(0, edges)
	for v := range res {
		if res[v] != float64(g.OutDegree(VertexID(v))) {
			t.Fatalf("degree vertex %d wrong", v)
		}
	}
	if err := NewSystem().LoadEdgeFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestCacheSimulationReportsMetrics(t *testing.T) {
	edges := gen.RMAT(52, 200, 4000, 0.57, 0.19, 0.19)
	sys := NewSystem(WithWorkers(4), WithCacheSimulation(64<<10, 1<<20))
	if err := sys.LoadEdges(0, edges); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Submit(algo.NewWCC()); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesIntoCache == 0 || rep.CacheMissRate <= 0 {
		t.Fatalf("cache metrics empty: %+v", rep)
	}
	if rep.Jobs[0].Name != "WCC" || rep.Jobs[0].Iterations == 0 || rep.Jobs[0].EdgesProcessed == 0 {
		t.Fatalf("job report empty: %+v", rep.Jobs[0])
	}
}

func TestRerunAfterMoreSubmissions(t *testing.T) {
	edges := gen.ER(8, 100, 900)
	sys := NewSystem(WithWorkers(2), WithScheduler(StaticScheduler), WithoutStragglerSplitting(), WithPartitions(5))
	if err := sys.LoadEdges(0, edges); err != nil {
		t.Fatal(err)
	}
	j1, _ := sys.Submit(algo.NewBFS(0))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	j2, _ := sys.Submit(algo.NewBFS(1))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Results(); err != nil {
		t.Fatal(err)
	}
	res, err := j2.Results()
	if err != nil {
		t.Fatal(err)
	}
	want := refimpl.BFS(graph.Build(0, edges), 1)
	for v := range res {
		if res[v] != want[v] && !(math.IsInf(res[v], 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("second-run bfs vertex %d wrong", v)
		}
	}
}

func TestServeModeLifecycle(t *testing.T) {
	edges := gen.RMAT(53, 250, 4000, 0.57, 0.19, 0.19)
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false))
	if err := sys.LoadEdges(250, edges); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- sys.Serve(context.Background()) }()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	pr, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Wait(ctx); err != nil {
		t.Fatalf("pagerank wait: %v", err)
	}
	if pr.State() != JobDone || pr.Err() != nil || pr.Metrics() == nil {
		t.Fatalf("done handle wrong: state=%v err=%v", pr.State(), pr.Err())
	}
	res, err := pr.Results()
	if err != nil {
		t.Fatal(err)
	}
	want := refimpl.PageRank(graph.Build(250, edges), 0.85, 1e-12, 3000)
	for v := range res {
		if math.Abs(res[v]-want[v]) > 1e-5 {
			t.Fatalf("pagerank vertex %d: got %v want %v", v, res[v], want[v])
		}
	}

	// Cancellation via the handle: epsilon 0 keeps PageRank iterating far
	// longer than the cancel takes to land.
	long, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := long.Cancel(); err != nil {
		t.Fatal(err)
	}
	if err := long.Wait(ctx); !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled wait = %v, want ErrCancelled", err)
	}
	if long.State() != JobCancelled {
		t.Fatalf("cancelled state = %v", long.State())
	}

	// Serving twice fails; batch Run is excluded while serving.
	if err := sys.Serve(context.Background()); err == nil {
		t.Fatal("second Serve must fail")
	}

	if err := sys.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-ctx.Done():
		t.Fatal("serve did not exit after shutdown")
	}
	// Shutdown when not serving is a no-op.
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Done < 1 || st.Cancelled < 1 || st.Rounds == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

// TestStructuralDeltaParity is the correctness anchor of structural
// evolution: a snapshot materialized from add_edge / remove_edge /
// add_vertex (plus in-place rewrite) mutations must yield per-vertex
// results matching a full Cut of the equivalent mutated edge list, while
// Restructure recuts strictly fewer partitions than the full path.
func TestStructuralDeltaParity(t *testing.T) {
	const n = 140
	base := gen.ER(17, n, 1800)
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false), WithPartitions(10))
	if err := sys.LoadEdges(n, base); err != nil {
		t.Fatal(err)
	}

	d := Delta{Flush: true}
	// Ten new users join…
	for v := 0; v < 10; v++ {
		d.Mutations = append(d.Mutations, Mutation{Op: MutationAddVertex, Vertex: VertexID(n + v)})
	}
	// …and follow existing ones (and each other).
	for i := 0; i < 60; i++ {
		d.Mutations = append(d.Mutations, Mutation{
			Op:   MutationAdd,
			Edge: Edge{Src: VertexID(n + i%10), Dst: VertexID((i * 7) % (n + 5)), Weight: 1},
		})
	}
	// A clustered run of old follows is dropped.
	for s := 100; s < 120; s++ {
		d.Mutations = append(d.Mutations, Mutation{Op: MutationRemove, Edge: base[s]})
	}
	// One in-place rewrite and one add+remove pair that must cancel.
	d.Mutations = append(d.Mutations,
		Mutation{Op: MutationRewrite, Slot: 5, Edge: Edge{Src: 1, Dst: 2, Weight: 2}},
		Mutation{Op: MutationAdd, Edge: Edge{Src: 3, Dst: 4, Weight: 9}},
		Mutation{Op: MutationRemove, Edge: Edge{Src: 3, Dst: 4}},
	)
	ack, err := sys.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Flushed {
		t.Fatalf("ack = %+v, want a flush", ack)
	}

	sys.mu.Lock()
	mutated := append([]Edge(nil), sys.edges...)
	numV := sys.numVertices
	sys.mu.Unlock()
	if numV != n+10 {
		t.Fatalf("vertex space = %d, want %d", numV, n+10)
	}
	if got := sys.store.Latest().PG.G.N; got != n+10 {
		t.Fatalf("snapshot N = %d, want %d", got, n+10)
	}

	ist := sys.IngestStats()
	if ist.SnapshotsBuilt != 1 || ist.EdgeAdds != 61 || ist.EdgeRemoves != 21 || ist.VertexAdds != 10 {
		t.Fatalf("ingest stats = %+v", ist)
	}
	if ist.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", ist.Cancelled)
	}
	// The acceptance bar: the structural path recut strictly fewer
	// partitions than a full Cut (which rebuilds all of them).
	if ist.PartsShared < 1 {
		t.Fatalf("structural delta rebuilt every partition: %+v", ist)
	}
	// Pin the recut split. Removals become holes in place (free-slot
	// list), so only the chunks actually containing touched slots — the
	// removed run, the rewrite, and the appended tail — are rebuilt; the
	// rest are shared. A regression back to tail-shifting removals would
	// dirty every chunk past the first removal and flip this split.
	if ist.PartsRebuilt != 5 || ist.PartsShared != 6 {
		t.Fatalf("recut split = %d rebuilt / %d shared, want 5 / 6", ist.PartsRebuilt, ist.PartsShared)
	}
	if ist.NumVertices != n+10 || ist.NewestSeq != 1 {
		t.Fatalf("window stats = %+v", ist)
	}

	// The full path: a from-scratch Cut of the equivalent mutated list.
	full := NewSystem(WithWorkers(2), WithCoreSubgraph(false), WithPartitions(10))
	if err := full.LoadEdges(numV, mutated); err != nil {
		t.Fatal(err)
	}
	ts := sys.store.Latest().Timestamp
	deltaJob, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-8}, AtTimestamp(ts))
	if err != nil {
		t.Fatal(err)
	}
	fullJob, err := full.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := full.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := deltaJob.Results()
	if err != nil {
		t.Fatal(err)
	}
	want, err := fullJob.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != numV {
		t.Fatalf("result sizes: delta %d, full %d, want %d", len(got), len(want), numV)
	}
	ref := refimpl.PageRank(graph.Build(numV, mutated), 0.85, 1e-12, 3000)
	for v := range got {
		// The two systems chunk the list differently, so float
		// accumulation order differs; parity is within tolerance.
		if math.Abs(got[v]-want[v]) > 1e-6 {
			t.Fatalf("vertex %d: delta-built %v != full-cut %v", v, got[v], want[v])
		}
		if math.Abs(got[v]-ref[v]) > 1e-5 {
			t.Fatalf("vertex %d: delta-built %v != refimpl %v", v, got[v], ref[v])
		}
	}
}

// TestRemoveFreeSlotNoTailRecut pins the free-slot removal path: removing
// edges punches holes instead of shifting the tail down, so a remove-only
// flush keeps the slot count and rebuilds only the chunks that contain
// the removed slots — the tail chunk stays shared. A follow-up add-only
// flush then reuses the holes in place, again leaving the tail untouched.
func TestRemoveFreeSlotNoTailRecut(t *testing.T) {
	const n = 140
	base := gen.ER(23, n, 1800)
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false), WithPartitions(10))
	if err := sys.LoadEdges(n, base); err != nil {
		t.Fatal(err)
	}

	// Remove a run of early edges: every removed slot lives in the first
	// chunks, far from the tail.
	d := Delta{Flush: true}
	for s := 0; s < 10; s++ {
		d.Mutations = append(d.Mutations, Mutation{Op: MutationRemove, Edge: base[s]})
	}
	if _, err := sys.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	pg := sys.store.Latest().PG
	if pg.G.Slots != 1800 || pg.G.NumEdges() != 1790 {
		t.Fatalf("slots/live = %d/%d, want 1800/1790", pg.G.Slots, pg.G.NumEdges())
	}
	ist := sys.IngestStats()
	if ist.PartsRebuilt != 2 || ist.PartsShared != 8 {
		t.Fatalf("remove-only recut split = %d rebuilt / %d shared, want 2 / 8",
			ist.PartsRebuilt, ist.PartsShared)
	}

	// Adds now pop the free slots and write in place: the slot count must
	// not grow and the tail chunk must again be shared, not rebuilt.
	d = Delta{Flush: true}
	for i := 0; i < 5; i++ {
		d.Mutations = append(d.Mutations, Mutation{
			Op:   MutationAdd,
			Edge: Edge{Src: VertexID(i), Dst: VertexID((i + 70) % n), Weight: 1},
		})
	}
	if _, err := sys.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	pg = sys.store.Latest().PG
	if pg.G.Slots != 1800 || pg.G.NumEdges() != 1795 {
		t.Fatalf("slots/live after reuse = %d/%d, want 1800/1795", pg.G.Slots, pg.G.NumEdges())
	}
	ist = sys.IngestStats()
	if got := ist.PartsRebuilt; got != 3 {
		t.Fatalf("cumulative rebuilt after slot-reusing adds = %d, want 3", got)
	}
	if got := ist.PartsShared; got != 17 {
		t.Fatalf("cumulative shared = %d, want 17", got)
	}

	// Parity: the holes must be invisible to computation.
	live := make([]Edge, 0, 1795)
	sys.mu.Lock()
	for _, e := range sys.edges {
		if !e.IsHole() {
			live = append(live, e)
		}
	}
	sys.mu.Unlock()
	job, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := job.Results()
	if err != nil {
		t.Fatal(err)
	}
	ref := refimpl.PageRank(graph.Build(n, live), 0.85, 1e-12, 3000)
	for v := range got {
		if math.Abs(got[v]-ref[v]) > 1e-5 {
			t.Fatalf("vertex %d: %v != refimpl %v", v, got[v], ref[v])
		}
	}
}

// TestPrePostGrowthConcurrentJobs pins the regression the refactor must
// never reintroduce: a job bound to a pre-growth snapshot runs to
// convergence concurrently with a job bound to a post-growth snapshot of
// different N, without panic or result corruption.
func TestPrePostGrowthConcurrentJobs(t *testing.T) {
	const n = 200
	base := gen.ER(19, n, 2600)
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false))
	if err := sys.LoadEdges(n, base); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- sys.Serve(context.Background()) }()

	pre, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-12}, AtTimestamp(0))
	if err != nil {
		t.Fatal(err)
	}

	// The graph grows while the pre-growth job iterates: 40 new vertices
	// and follows into and out of them.
	d := Delta{Flush: true}
	for v := 0; v < 40; v++ {
		d.Mutations = append(d.Mutations, Mutation{Op: MutationAddVertex, Vertex: VertexID(n + v)})
	}
	for i := 0; i < 160; i++ {
		src, dst := VertexID(n+i%40), VertexID((i*13)%n)
		if i%3 == 0 {
			src, dst = dst, src
		}
		d.Mutations = append(d.Mutations, Mutation{Op: MutationAdd, Edge: Edge{Src: src, Dst: dst, Weight: 1}})
	}
	ack, err := sys.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Flushed {
		t.Fatalf("growth delta did not flush: %+v", ack)
	}
	sys.mu.Lock()
	grown := append([]Edge(nil), sys.edges...)
	sys.mu.Unlock()

	post, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-12}, AtTimestamp(ack.Timestamp))
	if err != nil {
		t.Fatal(err)
	}
	if err := pre.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := post.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	preRes, err := pre.Results()
	if err != nil {
		t.Fatal(err)
	}
	postRes, err := post.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(preRes) != n || len(postRes) != n+40 {
		t.Fatalf("result sizes: pre %d (want %d), post %d (want %d)", len(preRes), n, len(postRes), n+40)
	}
	wantPre := refimpl.PageRank(graph.Build(n, base), 0.85, 1e-12, 3000)
	wantPost := refimpl.PageRank(graph.Build(n+40, grown), 0.85, 1e-12, 3000)
	for v := range preRes {
		if math.Abs(preRes[v]-wantPre[v]) > 1e-5 {
			t.Fatalf("pre-growth vertex %d: got %v want %v", v, preRes[v], wantPre[v])
		}
	}
	for v := range postRes {
		if math.Abs(postRes[v]-wantPost[v]) > 1e-5 {
			t.Fatalf("post-growth vertex %d: got %v want %v", v, postRes[v], wantPost[v])
		}
	}
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
}

// TestIngestAdmissionControl: with WithIngestCap the system sheds batches
// once the buffer is full, with ErrIngestSaturated, and recovers after a
// flush.
func TestIngestAdmissionControl(t *testing.T) {
	const n = 60
	base := gen.ER(23, n, 600)
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false), WithIngestCap(3))
	if err := sys.LoadEdges(n, base); err != nil {
		t.Fatal(err)
	}
	fill := Delta{Mutations: []Mutation{
		{Op: MutationAdd, Edge: Edge{Src: 1, Dst: 2, Weight: 1}},
		{Op: MutationAdd, Edge: Edge{Src: 2, Dst: 3, Weight: 1}},
		{Op: MutationAdd, Edge: Edge{Src: 3, Dst: 4, Weight: 1}},
	}}
	if _, err := sys.ApplyDelta(fill); err != nil {
		t.Fatal(err)
	}
	_, err := sys.ApplyDelta(Delta{Mutations: []Mutation{{Op: MutationAdd, Edge: Edge{Src: 4, Dst: 5, Weight: 1}}}})
	if !errors.Is(err, ErrIngestSaturated) {
		t.Fatalf("err = %v, want ErrIngestSaturated", err)
	}
	if sys.IngestStats().Shed != 1 {
		t.Fatalf("shed = %d, want 1", sys.IngestStats().Shed)
	}
	if _, err := sys.FlushDeltas(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ApplyDelta(Delta{Mutations: []Mutation{{Op: MutationAdd, Edge: Edge{Src: 4, Dst: 5, Weight: 1}}}}); err != nil {
		t.Fatalf("apply after flush = %v", err)
	}
}

// TestStructuralRemoveMisses: removing an edge the graph does not have is
// a counted no-op, not an error, and builds no snapshot on its own.
func TestStructuralRemoveMisses(t *testing.T) {
	edges := []Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}, {Src: 2, Dst: 0, Weight: 1}, {Src: 2, Dst: 1, Weight: 1}}
	sys := NewSystem(WithWorkers(1), WithCoreSubgraph(false), WithPartitions(2))
	if err := sys.LoadEdges(3, edges); err != nil {
		t.Fatal(err)
	}
	ack, err := sys.ApplyDelta(Delta{
		Mutations: []Mutation{{Op: MutationRemove, Edge: Edge{Src: 7, Dst: 9}}},
		Flush:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Flushed {
		t.Fatalf("missed remove built a snapshot: %+v", ack)
	}
	ist := sys.IngestStats()
	if ist.RemoveMisses != 1 || ist.SnapshotsBuilt != 0 {
		t.Fatalf("stats = %+v", ist)
	}
	// Removing every edge is rejected — at least one must remain — and the
	// failed batch stays buffered, so the next flush retries it together
	// with newly streamed mutations.
	all := Delta{Flush: true}
	for _, e := range edges {
		all.Mutations = append(all.Mutations, Mutation{Op: MutationRemove, Edge: e})
	}
	if _, err := sys.ApplyDelta(all); err == nil {
		t.Fatal("removing every edge accepted")
	}
	if sys.IngestStats().Failures != 1 {
		t.Fatalf("stats = %+v, want the failed flush counted", sys.IngestStats())
	}
	// An add joins the retained removes; the retried flush applies all of
	// them, leaving exactly the added edge.
	if _, err := sys.ApplyDelta(Delta{
		Mutations: []Mutation{{Op: MutationAdd, Edge: Edge{Src: 0, Dst: 2, Weight: 1}}},
		Flush:     true,
	}); err != nil {
		t.Fatalf("system unusable after rejected batch: %v", err)
	}
	if got := sys.store.Latest().PG.G.NumEdges(); got != 1 {
		t.Fatalf("edge count = %d, want 1 (retained removes + the add)", got)
	}
}

// TestSnapshotGrowsVertexSpaceThenDelta: a full-list snapshot whose
// rewritten edges name endpoints beyond the loaded vertex count grows the
// snapshot's N; structural deltas afterwards must keep working against the
// grown space (regression: a stale numVertices wedged the pipeline).
func TestSnapshotGrowsVertexSpaceThenDelta(t *testing.T) {
	edges := gen.ER(29, 50, 400)
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false))
	if err := sys.LoadEdges(50, edges); err != nil {
		t.Fatal(err)
	}
	mut := append([]Edge(nil), edges...)
	mut[0] = Edge{Src: 80, Dst: 3, Weight: 1} // endpoint beyond N=50
	if err := sys.AddSnapshot(mut, 10); err != nil {
		t.Fatal(err)
	}
	if got := sys.store.Latest().PG.G.N; got != 81 {
		t.Fatalf("snapshot N = %d, want 81", got)
	}
	ack, err := sys.ApplyDelta(Delta{
		Mutations: []Mutation{{Op: MutationAdd, Edge: Edge{Src: 81, Dst: 0, Weight: 1}}},
		Flush:     true,
	})
	if err != nil {
		t.Fatalf("structural delta after vertex-growing snapshot: %v", err)
	}
	if !ack.Flushed || sys.store.Latest().PG.G.N != 82 {
		t.Fatalf("delta after snapshot growth: ack=%+v N=%d", ack, sys.store.Latest().PG.G.N)
	}
}

// TestVertexGrowthBound: a structural mutation naming an absurd vertex id
// is rejected atomically at admission instead of forcing a dense
// vertex-table allocation to match it.
func TestVertexGrowthBound(t *testing.T) {
	edges := gen.ER(31, 40, 300)
	sys := NewSystem(WithWorkers(1), WithCoreSubgraph(false), WithMaxVertexGrowth(100))
	if err := sys.LoadEdges(40, edges); err != nil {
		t.Fatal(err)
	}
	for _, m := range []Mutation{
		{Op: MutationAddVertex, Vertex: 141},                     // 40 + 100 = 140 is the last allowed id... one past
		{Op: MutationAdd, Edge: Edge{Src: 0, Dst: 1<<32 - 1}},    // the NoVertex sentinel
		{Op: MutationRewrite, Slot: 0, Edge: Edge{Src: 9999999}}, // rewrite endpoints grow the space too
		{Op: MutationAddVertex, Vertex: 4294967294},              // ~2^32: would allocate gigabytes
	} {
		if _, err := sys.ApplyDelta(Delta{Mutations: []Mutation{m}}); err == nil {
			t.Fatalf("mutation %+v accepted past the growth bound", m)
		}
	}
	if sys.IngestStats().Pending != 0 {
		t.Fatal("rejected mutations were buffered")
	}
	// The boundary id itself is fine, and removes of huge ids just miss.
	if _, err := sys.ApplyDelta(Delta{Mutations: []Mutation{
		{Op: MutationAddVertex, Vertex: 139},
		{Op: MutationRemove, Edge: Edge{Src: 4294967294, Dst: 1}},
	}, Flush: true}); err != nil {
		t.Fatalf("in-bound growth rejected: %v", err)
	}
	if got := sys.store.Latest().PG.G.N; got != 140 {
		t.Fatalf("N = %d, want 140", got)
	}
}

// TestHoleCompaction pins the WithCompactionRatio trigger: a remove-heavy
// flush that pushes the tombstone share past the ratio compacts the edge
// list in place — the snapshot's slot space shrinks to the live count, the
// free-slot list empties (the next add appends instead of refilling), and
// computation over the compacted snapshot still matches the reference.
func TestHoleCompaction(t *testing.T) {
	const n = 120
	base := gen.ER(29, n, 1600)
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false), WithPartitions(8))
	if err := sys.LoadEdges(n, base); err != nil {
		t.Fatal(err)
	}

	// Remove 30% of the slots in one flush: crossing the default 0.25
	// trigger must compact within the same materialization.
	d := Delta{Flush: true}
	for s := 0; s < 480; s++ {
		d.Mutations = append(d.Mutations, Mutation{Op: MutationRemove, Edge: base[s]})
	}
	if _, err := sys.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	pg := sys.store.Latest().PG
	// Duplicate endpoint pairs in the generated list make the exact remove
	// count data-dependent; the compaction contract is that no tombstone
	// slot survives the flush.
	if pg.G.Slots != pg.G.NumEdges() || pg.G.Slots >= 1600 {
		t.Fatalf("slots/live after compaction = %d/%d, want equal and < 1600", pg.G.Slots, pg.G.NumEdges())
	}
	ist := sys.IngestStats()
	if ist.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", ist.Compactions)
	}
	sys.mu.Lock()
	holes := len(sys.freeSlots)
	sys.mu.Unlock()
	if holes != 0 {
		t.Fatalf("free-slot list not cleared: %d holes", holes)
	}

	// With no holes left, an add must append a fresh slot.
	compactedSlots := pg.G.Slots
	d = Delta{Flush: true, Mutations: []Mutation{
		{Op: MutationAdd, Edge: Edge{Src: 7, Dst: 90, Weight: 1}},
	}}
	if _, err := sys.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if got := sys.store.Latest().PG.G.Slots; got != compactedSlots+1 {
		t.Fatalf("slots after post-compaction add = %d, want %d", got, compactedSlots+1)
	}
	if got := sys.IngestStats().Compactions; got != 1 {
		t.Fatalf("compactions after hole-free add = %d, want 1", got)
	}

	// Parity over the compacted list: the holes' disappearance must be
	// invisible to computation.
	sys.mu.Lock()
	live := make([]Edge, 0, len(sys.edges))
	for _, e := range sys.edges {
		if !e.IsHole() {
			live = append(live, e)
		}
	}
	sys.mu.Unlock()
	job, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := job.Results()
	if err != nil {
		t.Fatal(err)
	}
	ref := refimpl.PageRank(graph.Build(n, live), 0.85, 1e-12, 3000)
	for v := range got {
		if math.Abs(got[v]-ref[v]) > 1e-5 {
			t.Fatalf("vertex %d: %v != refimpl %v", v, got[v], ref[v])
		}
	}
}

// TestHoleCompactionDisabled: a negative ratio turns the pass off — the
// same remove-heavy flush keeps every tombstone slot in place.
func TestHoleCompactionDisabled(t *testing.T) {
	const n = 120
	base := gen.ER(29, n, 1600)
	sys := NewSystem(WithWorkers(2), WithCoreSubgraph(false), WithPartitions(8),
		WithCompactionRatio(-1))
	if err := sys.LoadEdges(n, base); err != nil {
		t.Fatal(err)
	}
	d := Delta{Flush: true}
	for s := 0; s < 480; s++ {
		d.Mutations = append(d.Mutations, Mutation{Op: MutationRemove, Edge: base[s]})
	}
	if _, err := sys.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	pg := sys.store.Latest().PG
	if pg.G.Slots != 1600 || pg.G.NumEdges() >= 1600 {
		t.Fatalf("slots/live with compaction disabled = %d/%d, want 1600 slots with holes", pg.G.Slots, pg.G.NumEdges())
	}
	if got := sys.IngestStats().Compactions; got != 0 {
		t.Fatalf("compactions = %d, want 0", got)
	}
}

// TestSubmitExecModes drives the public execution-mode surface: async and
// delayed submissions converge to the BSP fixpoint (within tolerance for
// PageRank), the per-job report and executor counters attribute the mode,
// round traces carry it, and an unknown mode fails the submission.
func TestSubmitExecModes(t *testing.T) {
	const n = 400
	base := gen.RMAT(31, n, 8000, 0.57, 0.19, 0.19)
	sys := NewSystem(WithWorkers(4), WithPartitions(8), WithTraceDepth(1024))
	if err := sys.LoadEdges(n, base); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-9},
		WithExecMode("bogus")); err == nil {
		t.Fatal("unknown exec mode accepted")
	}

	bsp, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	asy, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-9}, WithExecMode(ExecAsync))
	if err != nil {
		t.Fatal(err)
	}
	del, err := sys.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-9},
		WithExecMode(ExecDelayed), WithStaleness(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	ref := refimpl.PageRank(graph.Build(n, base), 0.85, 1e-12, 3000)
	for _, job := range []*Job{bsp, asy, del} {
		got, err := job.Results()
		if err != nil {
			t.Fatal(err)
		}
		for v := range got {
			if math.Abs(got[v]-ref[v]) > 1e-6 {
				t.Fatalf("job %d vertex %d: %v != refimpl %v", job.ID(), v, got[v], ref[v])
			}
		}
	}

	rb := bsp.Metrics()
	ra := asy.Metrics()
	rd := del.Metrics()
	if rb.ExecMode != ExecBSP || ra.ExecMode != ExecAsync || rd.ExecMode != ExecDelayed {
		t.Fatalf("report modes = %q/%q/%q", rb.ExecMode, ra.ExecMode, rd.ExecMode)
	}
	if ra.Iterations >= rb.Iterations {
		t.Fatalf("async took %d iterations, BSP %d — fresh state should converge faster",
			ra.Iterations, rb.Iterations)
	}
	if ra.FreshFolds == 0 || rd.FreshFolds == 0 {
		t.Fatalf("fresh folds not attributed: async=%d delayed=%d", ra.FreshFolds, rd.FreshFolds)
	}
	if rd.BarriersSkipped == 0 || rd.BarriersForced == 0 {
		t.Fatalf("delayed barrier counters empty: %+v", rd)
	}
	if rb.FreshFolds != 0 || rb.BarriersSkipped != 0 || rb.BarriersForced != 0 {
		t.Fatalf("BSP job recorded async counters: %+v", rb)
	}

	es := sys.ExecStats()
	if es.FreshFolds == 0 || es.BarriersSkipped == 0 || es.BarriersForced == 0 {
		t.Fatalf("executor async counters empty: %+v", es)
	}
	if es.BSPJobs != 1 || es.AsyncJobs != 1 || es.DelayedJobs != 1 {
		t.Fatalf("per-mode job counts = %d/%d/%d, want 1/1/1",
			es.BSPJobs, es.AsyncJobs, es.DelayedJobs)
	}

	modes := map[string]bool{}
	var traceFresh int64
	for _, rt := range sys.RoundTraces(0) {
		traceFresh += rt.FreshFolds
		for _, jr := range rt.Jobs {
			modes[jr.Mode] = true
		}
	}
	if !modes["async"] || !modes["delayed"] {
		t.Fatalf("round traces missing mode attribution: %v", modes)
	}
	if modes["bsp"] {
		t.Fatal("BSP rounds must keep an empty Mode field (pre-mode trace shape)")
	}
	if traceFresh == 0 {
		t.Fatal("round traces carry no fresh-fold counts")
	}
}
